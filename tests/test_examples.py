"""Smoke tests: every example script runs end to end on a fast workload."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(name, argv, capsys):
    old_argv = sys.argv
    sys.argv = [f"{EXAMPLES}/{name}.py"] + argv
    try:
        runpy.run_path(f"{EXAMPLES}/{name}.py", run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", ["dcgan"], capsys)
        assert "offload candidates" in out
        assert "fixed-PIM utilization" in out

    def test_characterize_workload(self, capsys):
        out = run_example("characterize_workload", ["dcgan", "0.9"], capsys)
        assert "Top CI ops" in out
        assert "Conv2DBackpropFilter" in out

    def test_compare_configurations(self, capsys):
        out = run_example("compare_configurations", ["dcgan"], capsys)
        assert "hetero-pim" in out
        assert "Speedup over CPU" in out

    def test_frequency_sweep(self, capsys):
        out = run_example("frequency_sweep", ["dcgan"], capsys)
        assert "most energy-efficient point: 4x" in out

    def test_custom_model(self, capsys):
        out = run_example("custom_model", [], capsys)
        assert "step time on Hetero PIM" in out

    def test_verify_gradients(self, capsys):
        out = run_example("verify_gradients", [], capsys)
        assert "all gradients verified" in out

    def test_schedule_timeline(self, capsys):
        out = run_example("schedule_timeline", ["dcgan", "60"], capsys)
        assert "timeline:" in out
        assert "per-device load" in out

    def test_design_space(self, capsys):
        out = run_example("design_space", ["dcgan"], capsys)
        assert "444" in out
        assert "pool-size sweep" in out

    def test_mixed_workload_example(self, capsys):
        # the fastest co-run pair keeps this smoke test quick
        out = run_example(
            "mixed_workload", ["inception-v3", "lstm"], capsys
        )
        assert "improvement" in out

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_example("quickstart", ["lenet"], capsys)
