"""Experiment modules produce well-formed, paper-shaped outputs."""

import pytest

from repro.experiments import (
    ablation,
    families,
    fig2,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig17,
    table1,
)
from repro.experiments.report import (
    TextTable,
    format_seconds,
    normalized,
    stacked_bar,
)
from repro.profiling import OpCategory

FAST = ("alexnet", "dcgan")


class TestReportHelpers:
    def test_text_table_rendering(self):
        t = TextTable(["a", "b"])
        t.add_row(1, 2.5)
        out = t.render()
        assert "a" in out and "2.50" in out

    def test_text_table_rejects_ragged_rows(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_stacked_bar(self):
        bar = stacked_bar([1.0, 1.0], ["x", "y"], width=10)
        assert bar.startswith("|")
        assert "x=1" in bar

    def test_format_seconds_scales(self):
        assert format_seconds(2.0).endswith(" s")
        assert format_seconds(0.002).endswith(" ms")
        assert format_seconds(2e-6).endswith(" us")

    def test_normalized(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestTable1:
    def test_run_and_format(self):
        result = table1.run(("alexnet",))
        data = result["alexnet"]
        assert len(data.top_compute) == 5
        assert len(data.top_memory) == 5
        assert data.top_compute[0].op_type == "Conv2DBackpropFilter"
        assert 0 <= data.other_time_share < 0.3
        text = table1.format_result(result)
        assert "Conv2DBackpropFilter" in text


class TestFig2:
    def test_every_type_classified(self):
        result = fig2.run(("alexnet",))
        data = result["alexnet"]
        all_members = set()
        for category in OpCategory:
            all_members.update(data.members(category))
        graph_types = {
            t.op_type
            for t in table1.run(("alexnet",))["alexnet"].profile.by_type
        }
        assert all_members == graph_types
        assert "Conv2DBackpropFilter" in data.members(
            OpCategory.COMPUTE_AND_MEMORY_INTENSIVE
        )


class TestFamilies:
    def test_run_and_format_one_family(self):
        result = families.run(models=("gnn",))
        data = result["gnn"]
        assert data.family == "gnn"
        assert data.unclassified == 0
        assert 0.5 < data.offload_time_coverage <= 1.0
        assert 0.0 < data.offload_memory_coverage <= 1.0
        # message passing is programmable-PIM dominated
        assert data.class_time_shares["prog"] > 0.5
        assert set(data.backends) == {"hmc-hetero", "gradpim", "neurotrainer"}
        for cell in data.backends.values():
            assert cell.step_time_s > 0
            assert cell.dynamic_energy_j > 0
        assert data.fault_time_overheads[0] == pytest.approx(0.0)
        text = families.format_result(result)
        assert "GatherV2" in text
        assert "neurotrainer" in text


class TestFig8:
    def test_cells_and_speedups(self):
        result = fig8.run(models=FAST)
        for model in FAST:
            assert set(result[model]) == {
                "cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim"
            }
            for cell in result[model].values():
                assert cell.step_time_s > 0
                assert cell.breakdown.total_s == pytest.approx(
                    cell.step_time_s, rel=0.02
                )
        ratios = fig8.speedups(result)
        assert ratios["alexnet"]["cpu"] > 10
        text = fig8.format_result(result)
        assert "hetero-pim" in text


class TestFig9:
    def test_normalization_to_hetero(self):
        result = fig9.run(models=FAST)
        for model in FAST:
            assert result[model]["hetero-pim"].normalized == pytest.approx(1.0)
            assert result[model]["cpu"].normalized > 3.0


class TestFig10:
    def test_neurocube_ratios(self):
        result = fig10.run(models=("dcgan",))
        row = result["dcgan"]
        assert row.time_ratio > 2.5
        assert row.energy_ratio > 2.0
        assert "Neurocube" in fig10.format_result(result)


class TestFig11:
    def test_frequency_monotonicity(self):
        result = fig11.run(models=("alexnet",))
        cells = result["alexnet"]
        assert cells[1.0].step_time_s > cells[2.0].step_time_s
        assert cells[2.0].step_time_s > cells[4.0].step_time_s
        # paper: Hetero overtakes the GPU at higher frequencies
        assert cells[4.0].speedup_vs_gpu > cells[1.0].speedup_vs_gpu
        assert cells[4.0].speedup_vs_gpu > 1.0


class TestFig12:
    def test_design_points_and_spread(self):
        result = fig12.run(models=("alexnet",))
        cells = result["alexnet"]
        assert cells[1].n_fixed_units == 444
        assert cells[16].n_fixed_units < cells[4].n_fixed_units
        assert cells[1].relative_to_1p == pytest.approx(1.0)
        # paper: the three configurations differ modestly (12-14%)
        assert fig12.max_spread(result) < 0.35


class TestAblationFigures:
    def test_variants_cover_rc_op_matrix(self):
        labels = [label for label, _rc, _op in ablation.VARIANTS]
        assert labels == ["no RC/OP", "RC", "OP", "RC+OP"]
        with pytest.raises(ValueError):
            ablation.run_variant("dcgan", "bogus")

    def test_fig13_rc_op_speedup(self):
        result = fig13.run(models=("dcgan",))
        data = result["dcgan"]
        assert data.rc_op_speedup > 1.3
        assert data.hetero_hw_vs_prog > 1.0
        assert "RC+OP" in fig13.format_result(result)

    def test_fig14_energy_gain(self):
        result = fig14.run(models=("dcgan",))
        data = result["dcgan"]
        assert data.rc_op_energy_gain > 1.1
        assert data.normalized("RC+OP") == pytest.approx(1.0)

    def test_fig15_utilization_ladder(self):
        result = fig15.run(models=("alexnet",))
        util = result["alexnet"].utilization
        assert util["no RC/OP"] < util["RC"] <= 1.0
        assert util["RC+OP"] >= util["RC"]
        assert result["alexnet"].rc_gain > 0.3


class TestFig17:
    def test_edp_best_at_4x_and_gpu_power_ratio(self):
        result = fig17.run(models=("alexnet",))
        data = result["alexnet"]
        assert data.best_scale == 4.0  # paper: 4x most energy-efficient
        assert data.gpu_power_ratio(4.0) > 1.2  # GPU is power-hungry


class TestSupervisedRunner:
    """run_jobs rides the supervised pool: order, tuple forms, journal."""

    def _jobs(self):
        from repro.experiments.common import (
            cached_graph,
            resolve_configuration,
        )

        config, policy = resolve_configuration("hetero-pim")
        graph = cached_graph("alexnet")
        return graph, policy, config

    def test_accepts_4_and_5_tuples(self):
        from repro.experiments.runner import run_jobs

        graph, policy, config = self._jobs()
        four = (graph, policy, config, 1)
        five = (graph, policy, config, 1, None)
        a, b = run_jobs([four, five])
        # the trailing None fault slot is fingerprint-identical
        assert a.to_json() == b.to_json()

    def test_rejects_wrong_arity(self):
        from repro.experiments.runner import run_jobs

        graph, policy, config = self._jobs()
        with pytest.raises(ValueError, match="4 or 5 elements"):
            run_jobs([(graph, policy, config)])

    def test_last_supervision_reports_cache_split(self, tmp_path,
                                                  monkeypatch):
        from repro.experiments import runner
        from repro.sim import cache as sim_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(sim_cache, "_memory", {})
        graph, policy, config = self._jobs()
        runner.run_jobs([(graph, policy, config, 1)])
        first = runner.last_supervision()
        assert (first.submitted, first.cached) == (1, 0)
        runner.run_jobs([(graph, policy, config, 1)])
        second = runner.last_supervision()
        assert (second.submitted, second.cached) == (1, 1)
        assert second.completed == 0

    def test_journaled_batch_resumes_from_cache(self, tmp_path,
                                                monkeypatch):
        from repro.experiments import runner
        from repro.experiments.journal import RunJournal
        from repro.sim import cache as sim_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(sim_cache, "_memory", {})
        graph, policy, config = self._jobs()
        jobs = [(graph, policy, config, s) for s in (1, 2)]
        journal = RunJournal.create("experiment", {"id": "adhoc"})
        with runner.attach_journal(journal):
            runner.run_jobs(jobs)
        journal.close()
        assert len(journal.completed_fingerprints()) == 2
        # a "resumed" process: cold memory tier, same journal
        sim_cache._memory.clear()
        resumed = RunJournal.load(journal.run_id)
        with runner.attach_journal(resumed):
            runner.run_jobs(jobs)
        resumed.close()
        supervision = runner.last_supervision()
        assert supervision.cached == 2 and supervision.completed == 0
