"""Extension features: multi-stack scaling and inference derivation."""

import pytest

from repro.config import default_config
from repro.errors import GraphError, HardwareConfigError
from repro.nn.inference import (
    backward_share,
    derive_inference_graph,
    is_forward_op,
)
from repro.nn.models import build_model


class TestWithStacks:
    def test_scales_resources(self):
        base = default_config()
        quad = base.with_stacks(4)
        assert quad.fixed_pim.n_units == 4 * base.fixed_pim.n_units
        assert quad.prog_pim.n_pims == 4 * base.prog_pim.n_pims
        assert quad.stack.bandwidth == pytest.approx(4 * base.stack.bandwidth)
        assert quad.fixed_pim.reference_units == 4 * 444

    def test_one_stack_is_identity(self):
        assert default_config().with_stacks(1) == default_config()

    def test_rejects_zero(self):
        with pytest.raises(HardwareConfigError):
            default_config().with_stacks(0)

    def test_more_stacks_train_faster(self):
        from repro.baselines import make_hetero_pim
        from repro.sim.simulation import Simulation

        g = build_model("dcgan")
        times = []
        for n in (1, 4):
            cfg, pol = make_hetero_pim(default_config().with_stacks(n))
            times.append(Simulation(g, pol, config=cfg).run().step_time_s)
        assert times[1] < times[0]

    def test_scaling_is_sublinear(self):
        """Dependence chains and host-side work bound multi-stack gains."""
        from repro.baselines import make_hetero_pim
        from repro.sim.simulation import Simulation

        g = build_model("alexnet")
        cfg1, pol1 = make_hetero_pim(default_config())
        cfg4, pol4 = make_hetero_pim(default_config().with_stacks(4))
        t1 = Simulation(g, pol1, config=cfg1).run().step_time_s
        t4 = Simulation(g, pol4, config=cfg4).run().step_time_s
        assert 1.0 < t1 / t4 < 4.0


class TestInferenceDerivation:
    @pytest.fixture(scope="class")
    def pair(self):
        train = build_model("alexnet")
        return train, derive_inference_graph(train)

    def test_no_backward_ops(self, pair):
        _train, infer = pair
        counts = infer.invocation_counts()
        for backward_type in (
            "Conv2DBackpropFilter", "Conv2DBackpropInput", "BiasAddGrad",
            "ReluGrad", "MaxPoolGrad", "ApplyAdam",
        ):
            assert counts.get(backward_type, 0) == 0

    def test_forward_ops_preserved(self, pair):
        train, infer = pair
        t_counts = train.invocation_counts()
        i_counts = infer.invocation_counts()
        for forward_type in ("Conv2D", "Relu", "MaxPool", "MatMul", "BiasAdd"):
            # forward MatMuls stay, gradient MatMuls go
            assert 0 < i_counts.get(forward_type, 0) <= t_counts[forward_type]

    def test_is_forward_op_on_loss(self, pair):
        train, _ = pair
        loss = next(
            op for op in train.ops
            if op.op_type == "SparseSoftmaxCrossEntropyWithLogits"
        )
        assert not is_forward_op(loss)

    def test_graph_is_valid_and_named(self, pair):
        _train, infer = pair
        infer.validate()
        assert infer.name == "alexnet-inference"

    def test_backward_share_in_expected_range(self, pair):
        train, _ = pair
        # fwd:bwd compute is roughly 1:2 for conv nets
        assert 0.55 < backward_share(train) < 0.75

    def test_inference_faster_than_training(self, pair):
        from repro.baselines import make_hetero_pim
        from repro.sim.simulation import Simulation

        train, infer = pair
        cfg, pol = make_hetero_pim(default_config())
        t_train = Simulation(train, pol, config=cfg).run().step_time_s
        cfg2, pol2 = make_hetero_pim(default_config())
        t_infer = Simulation(infer, pol2, config=cfg2).run().step_time_s
        assert t_infer < 0.5 * t_train

    def test_empty_forward_rejected(self):
        from repro.nn.graph import Graph
        from repro.nn.ops import Op, OpCost
        from repro.nn.tensor import TensorSpec

        g = Graph(name="onlyloss")
        g.add_tensor(TensorSpec("x", (1,)))
        g.add_tensor(TensorSpec("grad/x", (1,)))
        g.add_op(Op("l", "Relu", inputs=("x",), outputs=("grad/x",),
                    cost=OpCost(other_flops=1)))
        with pytest.raises(GraphError):
            derive_inference_graph(g)

    def test_works_for_all_cnn_models(self):
        for model in ("vgg-19", "dcgan"):
            infer = derive_inference_graph(build_model(model))
            infer.validate()
            assert infer.num_ops < build_model(model).num_ops
