"""Failure injection: the system fails loudly on inconsistent states."""

import pytest

from repro.baselines import build_configuration
from repro.config import default_config
from repro.errors import (
    GraphError,
    SchedulingError,
    SimulationError,
)
from repro.nn.graph import Graph
from repro.nn.models import build_model
from repro.nn.ops import Op, OpCost
from repro.nn.tensor import TensorSpec
from repro.sim.engine import Engine
from repro.sim.policy import SchedulingPolicy
from repro.sim.simulation import Simulation


class DeadPolicy(SchedulingPolicy):
    """A policy that can never place anything (scheduler starvation)."""

    name = "dead"
    cpu_slots = 1

    def placements(self, op):
        return ("gpu",)  # never acquires: gpu exists but HOST ops can't...


class StarvingPolicy(SchedulingPolicy):
    """Returns an empty preference list: tasks can never start."""

    name = "starving"
    cpu_slots = 1

    def placements(self, op):
        return ()


class TestSchedulerFailures:
    def test_unplaceable_tasks_deadlock_is_detected(self):
        g = build_model("dcgan")
        with pytest.raises(SimulationError, match="deadlock"):
            Simulation(g, StarvingPolicy(), default_config(), steps=1).run()

    def test_invalid_policy_configuration_rejected(self):
        policy = StarvingPolicy()
        policy.cpu_slots = 0
        with pytest.raises(ValueError):
            policy.validate()

    def test_negative_pipeline_depth_rejected(self):
        policy = StarvingPolicy()
        policy.pipeline_depth = -1
        with pytest.raises(ValueError):
            policy.validate()


class TestEngineFailures:
    def test_callback_exception_propagates(self):
        engine = Engine()

        def boom():
            raise RuntimeError("injected failure")

        engine.at(1.0, boom)
        with pytest.raises(RuntimeError, match="injected failure"):
            engine.run()

    def test_events_after_failure_are_preserved(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: (_ for _ in ()).throw(ValueError("x")))
        engine.at(2.0, lambda: fired.append(2))
        with pytest.raises(ValueError):
            engine.run()
        # the engine can be resumed after handling the failure
        engine.run()
        assert fired == [2]


class TestGraphCorruption:
    def test_broken_dependency_chain_detected(self):
        """A graph op consuming an unproduced tensor simulates as external
        input; a *cyclic* graph must fail validation."""
        g = Graph(name="bad")
        g.add_tensor(TensorSpec("a", (1,)))
        g.add_tensor(TensorSpec("b", (1,)))
        g.add_op(Op("x", "Relu", inputs=("b",), outputs=("a",),
                    cost=OpCost(other_flops=1)))
        g.add_op(Op("y", "Relu", inputs=("a",), outputs=("b",),
                    cost=OpCost(other_flops=1)))
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_simulating_cyclic_graph_fails_fast(self):
        g = Graph(name="bad")
        g.add_tensor(TensorSpec("a", (1,)))
        g.add_tensor(TensorSpec("b", (1,)))
        g.add_op(Op("x", "Relu", inputs=("b",), outputs=("a",),
                    cost=OpCost(other_flops=1)))
        g.add_op(Op("y", "Relu", inputs=("a",), outputs=("b",),
                    cost=OpCost(other_flops=1)))
        cfg, pol = build_configuration("cpu")
        with pytest.raises(GraphError):
            Simulation(g, pol, cfg)


class TestResourceMisuse:
    def test_pool_over_release_detected(self):
        from repro.hardware.fixed_pim import FixedPIMPool

        pool = FixedPIMPool(4)
        pool.allocate("k", 2, now=0.0)
        pool.release("k", now=1.0)
        with pytest.raises(SchedulingError):
            pool.release("k", now=2.0)

    def test_expand_without_allocation_detected(self):
        from repro.hardware.fixed_pim import FixedPIMPool

        with pytest.raises(SchedulingError):
            FixedPIMPool(4).expand("ghost", 2, now=0.0)

    def test_simulation_completes_after_resource_pressure(self):
        """One-unit pool: everything serializes but still completes."""
        from dataclasses import replace

        base = default_config()
        tiny = replace(base, fixed_pim=replace(base.fixed_pim, n_units=1))
        cfg, pol = build_configuration("hetero-pim", tiny)
        result = Simulation(build_model("dcgan"), pol, cfg, steps=1).run()
        assert result.makespan_s > 0

    def test_single_prog_pim_and_single_cpu_slot(self):
        """Minimal executor counts cannot deadlock the hetero runtime."""
        from repro.runtime.scheduler import HeteroPimPolicy

        pol = HeteroPimPolicy(cpu_slots=1)
        result = Simulation(
            build_model("dcgan"), pol, default_config(), steps=1
        ).run()
        assert pol.cpu_slots == 1
        assert result.makespan_s > 0
