"""Fault injection & graceful degradation (``repro.faults``)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.baselines import build_configuration
from repro.errors import SimulationError
from repro.faults import (
    BankFailure,
    DramDerate,
    FaultSpec,
    ProgPimLoss,
    ThermalThrottle,
    UnitLoss,
)
from repro.hardware.fixed_pim import FixedPIMPool
from repro.hardware.hmc import StackGeometry
from repro.hardware.placement import place_fixed_pims
from repro.nn.models import build_model
from repro.obs.trace import validate_chrome_trace
from repro.runtime.registers import UtilizationRegisters
from repro.sim import cache as sim_cache
from repro.sim.cache import run_fingerprint, simulate_cached
from repro.sim.simulation import Simulation

MODEL = "lstm"  # smallest evaluation workload: keeps these tests quick


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk tier at a throwaway directory; drop the memory tier."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    sim_cache._memory.clear()
    sim_cache.reset_stats()
    yield
    sim_cache._memory.clear()


def _job():
    config, policy = build_configuration("hetero-pim")
    return build_model(MODEL), policy, config


def _run(spec, steps=1):
    graph, policy, config = _job()
    sim = Simulation(graph, policy, config, steps=steps, faults=spec)
    return sim.run()


class TestSpec:
    def test_generate_deterministic(self):
        a = FaultSpec.generate(seed=7, horizon_s=0.05, n_events=4)
        b = FaultSpec.generate(seed=7, horizon_s=0.05, n_events=4)
        assert a == b
        assert a != FaultSpec.generate(seed=8, horizon_s=0.05, n_events=4)

    def test_round_trip(self):
        spec = FaultSpec.generate(seed=3, horizon_s=0.05, n_events=5)
        assert FaultSpec.from_json(spec.to_json()) == spec
        # and the JSON itself is stable
        assert FaultSpec.from_json(spec.to_json()).to_json() == spec.to_json()

    def test_events_normalized_to_injection_order(self):
        early = UnitLoss(time_s=0.001, units=4)
        late = BankFailure(time_s=0.002, bank=3)
        assert FaultSpec(events=(late, early)) == FaultSpec(events=(early, late))

    def test_validation(self):
        with pytest.raises(SimulationError):
            ThermalThrottle(time_s=0.0, duration_s=0.01, factor=1.5)
        with pytest.raises(SimulationError):
            DramDerate(time_s=-1.0, duration_s=0.01, factor=0.5)
        with pytest.raises(SimulationError):
            UnitLoss(time_s=0.0, units=0)
        with pytest.raises(SimulationError):
            FaultSpec(retry_backoff_s=1e-3, retry_backoff_cap_s=1e-4)

    def test_backoff_doubles_then_caps(self):
        spec = FaultSpec(retry_backoff_s=50e-6, retry_backoff_cap_s=400e-6)
        delays = [spec.backoff_s(attempt) for attempt in range(1, 8)]
        assert delays[:4] == [50e-6, 100e-6, 200e-6, 400e-6]
        assert all(d == 400e-6 for d in delays[4:])
        assert delays == sorted(delays)


class TestFingerprint:
    def test_faults_enter_the_fingerprint(self):
        graph, policy, config = _job()
        plain = run_fingerprint(graph, policy, config)
        spec_a = FaultSpec(events=(UnitLoss(time_s=0.001, units=8),))
        spec_b = FaultSpec(events=(UnitLoss(time_s=0.001, units=9),))
        fp_a = run_fingerprint(graph, policy, config, faults=spec_a)
        fp_b = run_fingerprint(graph, policy, config, faults=spec_b)
        assert len({plain, fp_a, fp_b}) == 3
        assert fp_a == run_fingerprint(graph, policy, config, faults=spec_a)

    def test_cached_round_trip_with_faults(self):
        graph, policy, config = _job()
        spec = FaultSpec.generate(seed=5, horizon_s=0.02, n_events=2)
        first = simulate_cached(graph, policy, config, steps=1, faults=spec)
        again = simulate_cached(graph, policy, config, steps=1, faults=spec)
        assert again.to_json() == first.to_json()
        assert sim_cache.stats()["memory_hits"] >= 1


class TestDeterminism:
    def test_same_spec_byte_identical(self):
        spec = FaultSpec.generate(seed=13, horizon_s=0.02, n_events=3)
        first = _run(spec)
        sim_cache._memory.clear()
        second = _run(spec)
        assert second.to_json() == first.to_json()

    def test_fault_free_run_records_no_faults(self):
        result = _run(None)
        assert result.faults is None


@pytest.fixture(scope="module")
def mid_run_s():
    """A fault time inside the active window (30% of the fault-free run)."""
    graph, policy, config = _job()
    return 0.3 * Simulation(graph, policy, config, steps=1).run().makespan_s


class TestDegradation:
    def test_total_pool_loss_degrades_to_prog_first(self, mid_run_s):
        graph, policy, config = _job()
        spec = FaultSpec(
            events=(UnitLoss(time_s=mid_run_s, units=config.fixed_pim.n_units),)
        )
        result = _run(spec)
        assert result.makespan_s > 0
        degradations = result.faults["degradations"]
        assert degradations, "total pool loss must force degradations"
        fixed_exits = [d for d in degradations if d["from"] in ("fixed", "hybrid")]
        assert fixed_exits
        # prog cluster is alive, so fixed work lands there before the CPU
        assert all(d["to"] == "prog" for d in fixed_exits)
        assert result.faults["counts"]["reselections"] >= 1

    def test_pool_and_prog_loss_degrades_to_cpu(self, mid_run_s):
        graph, policy, config = _job()
        spec = FaultSpec(
            events=(
                ProgPimLoss(time_s=mid_run_s * 0.9, pims=config.prog_pim.n_pims),
                UnitLoss(time_s=mid_run_s, units=config.fixed_pim.n_units),
            )
        )
        result = _run(spec)
        assert result.makespan_s > 0
        fixed_exits = [
            d
            for d in result.faults["degradations"]
            if d["from"] in ("fixed", "hybrid")
        ]
        assert fixed_exits
        # nothing left in-stack: the only refuge is the CPU
        assert all(d["to"] == "cpu" for d in fixed_exits)

    def test_partial_loss_retries_before_degrading(self, mid_run_s):
        graph, policy, config = _job()
        spec = FaultSpec(
            events=(UnitLoss(time_s=mid_run_s, units=config.fixed_pim.n_units // 2),)
        )
        result = _run(spec)
        retries = result.faults["retries"]
        assert retries, "a partial loss must be retried, not degraded"
        for entry in retries:
            assert entry["delay_s"] == spec.backoff_s(entry["attempt"])
            assert entry["delay_s"] <= spec.retry_backoff_cap_s


class TestRegisters:
    def _registers(self):
        config, _ = build_configuration("hetero-pim")
        geometry = StackGeometry(config.stack)
        pool = FixedPIMPool(n_units=config.fixed_pim.n_units)
        placement = place_fixed_pims(geometry, pool.n_units)

        class _Cluster:
            n_pims = 1
            busy_pims = 0
            free_pims = 1

        return pool, placement, UtilizationRegisters(pool, _Cluster(), placement)

    def test_failed_bank_latches_busy(self):
        pool, placement, registers = self._registers()
        assert not any(registers.snapshot().bank_busy)
        registers.mark_bank_failed(2)
        snap = registers.snapshot()
        assert snap.bank_busy[2] is True
        assert registers.failed_banks == {2}
        # the failed bank's capacity is consumed, not double-counted
        others = [b for i, b in enumerate(snap.bank_busy) if i != 2]
        assert not any(others)

    def test_lost_units_count_as_busy(self):
        pool, placement, registers = self._registers()
        pool.shrink(pool.n_units, now=0.0)
        assert all(registers.snapshot().bank_busy)


SINGLE_FAULTS = [
    BankFailure(time_s=1e-5, bank=0),
    UnitLoss(time_s=1e-5, units=100),
    ThermalThrottle(time_s=1e-5, duration_s=5e-3, factor=0.5, zone="corner"),
    ProgPimLoss(time_s=1e-5, pims=1),
    DramDerate(time_s=1e-5, duration_s=5e-3, factor=0.6),
]


class TestApiIntegration:
    @pytest.mark.parametrize("event", SINGLE_FAULTS, ids=lambda e: e.kind)
    def test_every_single_fault_completes_all_steps(self, event):
        spec = FaultSpec(events=(event,))
        report = api.simulate(MODEL, "hetero-pim", steps=2, faults=spec)
        assert report.makespan_s > 0
        assert report.result.faults["counts"]["events"] >= 1
        assert report.fault_counts["events"] >= 1

    def test_fault_free_report_counts_are_zero(self):
        report = api.simulate(MODEL, "hetero-pim", steps=1)
        assert report.faults is None
        assert set(report.fault_counts.values()) == {0}

    def test_trace_gets_a_fault_lane(self, tmp_path):
        spec = FaultSpec.generate(seed=13, horizon_s=0.02, n_events=3)
        report = api.simulate(
            MODEL, "hetero-pim", steps=1, faults=spec, observe=True
        )
        path = tmp_path / "trace.json"
        report.save_trace(str(path))
        events = validate_chrome_trace(str(path))
        assert events
        fault_lane = [
            e
            for e in json.loads(path.read_text())["traceEvents"]
            if e.get("tid") == 90 and e.get("ph") == "i"
        ]
        assert fault_lane
        assert any(e["name"].startswith("fault:") for e in fault_lane)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_events=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_any_generated_spec_completes_a_step(seed, n_events):
    """Property: whatever faults strike, every training step completes."""
    spec = FaultSpec.generate(seed=seed, horizon_s=0.02, n_events=n_events)
    graph, policy, config = _job()
    result = Simulation(graph, policy, config, steps=1, faults=spec).run()
    assert result.makespan_s > 0
    assert result.step_time_s > 0
    if n_events:
        assert result.faults["counts"]["events"] >= n_events
