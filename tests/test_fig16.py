"""Mixed-workload co-running (Figure 16) — one fast case end to end."""

import pytest

from repro.experiments import fig16


@pytest.fixture(scope="module")
def case():
    # inception-v3 + lstm is the cheapest of the six cases to simulate
    return fig16.run_case("inception-v3", "lstm")


class TestCoRun:
    def test_corun_absorbs_the_tenant(self, case):
        """Co-running costs little more than the CNN alone."""
        assert case.corun_s < 1.25 * case.solo_cnn_s

    def test_improvement_in_paper_band(self, case):
        """Paper: 69%-83% improvement over sequential execution."""
        assert 0.5 < case.improvement < 1.2

    def test_tenant_rate_balances_durations(self, case):
        k = case.non_cnn_steps_per_cnn_step
        tenant_work = k * case.solo_non_cnn_s
        assert 0.4 * case.solo_cnn_s < tenant_work < 1.1 * case.solo_cnn_s

    def test_sequential_is_sum_of_solos(self, case):
        expected = (
            case.solo_cnn_s
            + case.non_cnn_steps_per_cnn_step * case.solo_non_cnn_s
        )
        assert case.sequential_s == pytest.approx(expected)

    def test_formatting(self, case):
        text = fig16.format_result({"inception-v3+lstm": case})
        assert "inception-v3+lstm" in text
        assert "%" in text
