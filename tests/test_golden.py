"""Golden regression: the calibrated results are locked.

The simulator is fully deterministic, so any drift in these metrics means
an unintended behavioral change.  Intentional calibration updates must
regenerate the snapshot (``python tools/regen_golden.py``) and re-validate
the paper bands (tests/test_paper_bands.py, EXPERIMENTS.md).
"""

import json
import pathlib

import pytest

from repro.experiments.common import run_model_on

GOLDEN = pathlib.Path(__file__).parent / "golden" / "metrics.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def _cases(configs):
    return [
        (model, config)
        for model in ("vgg-19", "alexnet", "dcgan")
        for config in configs
    ]


@pytest.mark.parametrize(
    "model,config",
    _cases(("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim", "neurocube")),
)
def test_metrics_match_golden(golden, model, config):
    expected = golden[f"{model}/{config}"]
    result = run_model_on(model, config)
    assert result.step_time_s == pytest.approx(
        expected["step_time_s"], rel=1e-9
    )
    assert result.step_dynamic_energy_j == pytest.approx(
        expected["dynamic_energy_j"], rel=1e-9
    )
    assert result.fixed_pim_utilization == pytest.approx(
        expected["fixed_pim_utilization"], rel=1e-9, abs=1e-12
    )
    assert result.step_breakdown.sync_s == pytest.approx(
        expected["sync_s"], rel=1e-9, abs=1e-12
    )
    assert result.step_breakdown.data_movement_s == pytest.approx(
        expected["data_movement_s"], rel=1e-9, abs=1e-12
    )


def test_golden_file_covers_all_cases(golden):
    assert len(golden) == 18  # 3 models x 6 configurations
