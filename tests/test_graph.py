"""Dataflow-graph construction, dependences and merging."""

import pytest

from repro.errors import GraphError
from repro.nn.graph import Graph, merge_graphs
from repro.nn.ops import Op, OpCost
from repro.nn.tensor import TensorSpec


def tiny_graph() -> Graph:
    """a(Conv2D) -> b(Relu) -> c(BiasAddGrad); plus an Adam update."""
    g = Graph(name="tiny", batch_size=4)
    g.add_tensor(TensorSpec("x", (4, 8)))
    g.add_tensor(TensorSpec("w", (8, 8)))
    g.add_tensor(TensorSpec("t1", (4, 8)))
    g.add_tensor(TensorSpec("t2", (4, 8)))
    g.add_tensor(TensorSpec("gw", (8, 8)))
    g.add_tensor(TensorSpec("w_new", (8, 8)))
    g.add_op(Op("a", "MatMul", inputs=("x", "w"), outputs=("t1",),
                cost=OpCost(muls=10, adds=10),
                attrs={"params_read": ("w",)}))
    g.add_op(Op("b", "Relu", inputs=("t1",), outputs=("t2",),
                cost=OpCost(other_flops=5)))
    g.add_op(Op("c", "BiasAddGrad", inputs=("t2",), outputs=("gw",),
                cost=OpCost(adds=5)))
    g.add_op(Op("opt", "ApplyAdam", inputs=("w", "gw"), outputs=("w_new",),
                cost=OpCost(muls=8, adds=8),
                attrs={"param_written": "w"}))
    return g


class TestConstruction:
    def test_duplicate_tensor_rejected(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("x", (1,)))
        with pytest.raises(GraphError):
            g.add_tensor(TensorSpec("x", (2,)))

    def test_duplicate_op_rejected(self):
        g = tiny_graph()
        with pytest.raises(GraphError):
            g.add_op(Op("a", "MatMul"))

    def test_unknown_input_rejected(self):
        g = Graph(name="g")
        with pytest.raises(GraphError):
            g.add_op(Op("a", "Relu", inputs=("missing",)))

    def test_undeclared_output_rejected(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("x", (1,)))
        with pytest.raises(GraphError):
            g.add_op(Op("a", "Relu", inputs=("x",), outputs=("nope",)))

    def test_double_producer_rejected(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("x", (1,)))
        g.add_tensor(TensorSpec("y", (1,)))
        g.add_op(Op("a", "Relu", inputs=("x",), outputs=("y",)))
        with pytest.raises(GraphError):
            g.add_op(Op("b", "Relu", inputs=("x",), outputs=("y",)))


class TestQueries:
    def test_predecessors_follow_tensors(self):
        g = tiny_graph()
        assert g.predecessors("a") == set()
        assert g.predecessors("b") == {"a"}
        assert g.predecessors("opt") == {"c"}

    def test_successors(self):
        g = tiny_graph()
        assert g.successors("a") == {"b"}
        assert g.successors("c") == {"opt"}

    def test_control_deps_join_predecessors(self):
        g = tiny_graph()
        g.add_tensor(TensorSpec("z", (1,)))
        g.add_op(Op("ctl", "NoOp", outputs=("z",),
                    attrs={"control_deps": ("a",)}))
        assert "a" in g.predecessors("ctl")
        assert "ctl" in g.successors("a")

    def test_producer_of(self):
        g = tiny_graph()
        assert g.producer_of("t1") == "a"
        assert g.producer_of("x") is None

    def test_param_update_tracking(self):
        g = tiny_graph()
        assert g.param_update_op("w") == "opt"
        assert g.param_update_op("unknown") is None
        assert g.params_read_by("a") == ("w",)

    def test_invocation_counts(self):
        counts = tiny_graph().invocation_counts()
        assert counts["MatMul"] == 1
        assert counts["Relu"] == 1

    def test_total_cost_sums_components(self):
        total = tiny_graph().total_cost()
        assert total.muls == 10 + 8
        assert total.adds == 10 + 5 + 8
        assert total.other_flops == 5


class TestTopologicalOrder:
    def test_respects_dependences(self):
        g = tiny_graph()
        order = [op.name for op in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("c") < order.index("opt")

    def test_cycle_detected(self):
        g = Graph(name="cyclic")
        g.add_tensor(TensorSpec("x", (1,)))
        g.add_tensor(TensorSpec("y", (1,)))
        g.add_op(Op("a", "Relu", inputs=("y",), outputs=("x",)))
        with pytest.raises(GraphError):
            g.add_op(Op("b", "Relu", inputs=("x",), outputs=("y",)))
            g.topological_order()

    def test_resident_bytes_excludes_gradients(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("act", (100,)))
        g.add_tensor(TensorSpec("grad/act", (100,)))
        assert g.resident_bytes() == 400


class TestMergeGraphs:
    def test_merge_prefixes_and_isolates(self):
        a, b = tiny_graph(), tiny_graph()
        b.name = "tiny2"
        merged = merge_graphs("both", [a, b])
        assert merged.num_ops == 2 * a.num_ops
        assert merged.has_op("tiny::a") and merged.has_op("tiny2::a")
        # no cross-model dependences
        assert merged.predecessors("tiny2::b") == {"tiny2::a"}

    def test_merge_rewrites_param_attrs(self):
        a, b = tiny_graph(), tiny_graph()
        b.name = "tiny2"
        merged = merge_graphs("both", [a, b])
        assert merged.param_update_op("tiny::w") == "tiny::opt"
        assert merged.params_read_by("tiny2::a") == ("tiny2::w",)

    def test_merge_tags_source_model(self):
        a, b = tiny_graph(), tiny_graph()
        b.name = "tiny2"
        merged = merge_graphs("both", [a, b])
        assert merged.op("tiny::a").attrs["source_model"] == "tiny"
        assert merged.op("tiny2::a").attrs["source_model"] == "tiny2"

    def test_merge_sums_input_bytes(self):
        a, b = tiny_graph(), tiny_graph()
        a.input_bytes, b.input_bytes = 100, 50
        b.name = "tiny2"
        assert merge_graphs("both", [a, b]).input_bytes == 150
