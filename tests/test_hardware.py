"""Hardware models: stack geometry, placement, area DSE, device timing."""

import pytest

from repro.config import StackConfig, default_config
from repro.errors import HardwareConfigError, PlacementError, SchedulingError
from repro.hardware.area import (
    LogicDieBudget,
    explore_prog_pim_tradeoff,
    max_fixed_units,
)
from repro.hardware.cpu import CpuModel, OpTiming
from repro.hardware.fixed_pim import FixedPIMPool
from repro.hardware.gpu import GpuModel
from repro.hardware.hmc import BankZone, StackGeometry
from repro.hardware.placement import (
    ZONE_WEIGHTS,
    place_fixed_pims,
    validate_thermal,
)
from repro.hardware.prog_pim import ProgPIMCluster
from repro.nn.ops import Op, OpCost


class TestStackGeometry:
    def test_32_banks_in_4x8_grid(self):
        geo = StackGeometry(StackConfig())
        corners, edges, centers = geo.zone_counts()
        assert corners == 4
        assert edges == 16
        assert centers == 12
        assert corners + edges + centers == 32

    def test_zone_classification(self):
        geo = StackGeometry(StackConfig())
        assert geo.bank(0).zone is BankZone.CORNER
        assert geo.bank(7).zone is BankZone.CORNER
        assert geo.bank(1).zone is BankZone.EDGE
        assert geo.bank(9).zone is BankZone.CENTER

    def test_grid_must_match_bank_count(self):
        with pytest.raises(HardwareConfigError):
            StackGeometry(StackConfig(), rows=5, cols=5)

    def test_bank_index_bounds(self):
        geo = StackGeometry(StackConfig())
        with pytest.raises(HardwareConfigError):
            geo.bank(32)


class TestPlacement:
    def test_paper_unit_count_distributes_exactly(self):
        geo = StackGeometry(StackConfig())
        placement = place_fixed_pims(geo, 444)
        assert placement.total_units == 444
        validate_thermal(placement, geo)

    def test_cool_zones_get_more_units(self):
        geo = StackGeometry(StackConfig())
        placement = place_fixed_pims(geo, 444)
        corner = placement.units_in(0)
        center = placement.units_in(9)
        assert corner > center

    def test_zone_weights_ordering(self):
        assert (
            ZONE_WEIGHTS[BankZone.CORNER]
            > ZONE_WEIGHTS[BankZone.EDGE]
            > ZONE_WEIGHTS[BankZone.CENTER]
        )

    def test_zero_units(self):
        geo = StackGeometry(StackConfig())
        assert place_fixed_pims(geo, 0).total_units == 0

    def test_negative_rejected(self):
        geo = StackGeometry(StackConfig())
        with pytest.raises(PlacementError):
            place_fixed_pims(geo, -1)


class TestAreaDSE:
    def test_derives_papers_444_units(self):
        cfg = default_config()
        point = max_fixed_units(LogicDieBudget(), cfg.fixed_pim, cfg.prog_pim)
        assert point.n_fixed_units == 444
        assert point.feasible(LogicDieBudget())

    def test_more_prog_pims_displace_fixed_units(self):
        cfg = default_config()
        points = explore_prog_pim_tradeoff(
            LogicDieBudget(), cfg.fixed_pim, cfg.prog_pim, max_prog_pims=4
        )
        units = [p.n_fixed_units for p in points]
        assert units == sorted(units, reverse=True)

    def test_negative_prog_pims_rejected(self):
        cfg = default_config()
        with pytest.raises(HardwareConfigError):
            max_fixed_units(LogicDieBudget(), cfg.fixed_pim, cfg.prog_pim, -1)


class TestCpuModel:
    def _op(self, **cost):
        return Op(name="o/MatMul", op_type="MatMul", cost=OpCost(**cost))

    def test_compute_bound_op(self):
        cpu = CpuModel(default_config().cpu)
        op = self._op(muls=10**9, adds=10**9, bytes_in=1000)
        t = cpu.op_timing(op)
        assert t.compute_s > t.memory_s
        assert t.total_s == pytest.approx(t.compute_s)
        assert t.exposed_memory_s == 0.0

    def test_memory_bound_op(self):
        cpu = CpuModel(default_config().cpu)
        op = Op(
            name="o/BiasAddGrad", op_type="BiasAddGrad",
            cost=OpCost(adds=10, bytes_in=10**9),
        )
        t = cpu.op_timing(op)
        assert t.memory_s > t.compute_s
        assert t.exposed_memory_s == pytest.approx(t.memory_s - t.compute_s)

    def test_cores_fraction_scales_compute(self):
        cpu = CpuModel(default_config().cpu)
        op = self._op(muls=10**9, adds=10**9)
        full = cpu.op_timing(op, cores_fraction=1.0)
        half = cpu.op_timing(op, cores_fraction=0.5)
        assert half.compute_s == pytest.approx(2 * full.compute_s)

    def test_invalid_fraction_rejected(self):
        cpu = CpuModel(default_config().cpu)
        with pytest.raises(ValueError):
            cpu.op_timing(self._op(muls=1), cores_fraction=0.0)

    def test_optiming_properties(self):
        t = OpTiming(compute_s=1.0, memory_s=3.0)
        assert t.total_s == 3.0
        assert t.exposed_memory_s == 2.0
        assert t.operation_s == 1.0


class TestGpuModel:
    def test_utilization_scales_throughput(self):
        cfg = default_config().gpu
        fast = GpuModel(cfg, "vgg-19")       # util 0.63
        slow = GpuModel(cfg, "alexnet")      # util 0.30
        assert fast.effective_flops > slow.effective_flops

    def test_swap_traffic_only_over_capacity(self):
        from repro.nn.models import build_model
        gpu = GpuModel(default_config().gpu, "resnet-50")
        resnet = build_model("resnet-50")
        alexnet = build_model("alexnet")
        assert gpu.swap_bytes(resnet) > 0
        assert gpu.swap_bytes(alexnet) == 0
        assert gpu.exposed_transfer_s(resnet) > gpu.exposed_transfer_s(alexnet)


class TestFixedPIMPool:
    def test_allocate_release_cycle(self):
        pool = FixedPIMPool(10)
        assert pool.allocate("k1", 6, now=0.0) == 6
        assert pool.free_units == 4
        assert pool.allocate("k2", 8, now=1.0) == 4  # partial grant
        assert pool.free_units == 0
        assert pool.release("k1", now=2.0) == 6
        assert pool.free_units == 6

    def test_busy_integral_accounts_held_time(self):
        pool = FixedPIMPool(10)
        pool.allocate("k", 5, now=0.0)
        pool.release("k", now=2.0)
        assert pool.busy_unit_seconds(3.0) == pytest.approx(10.0)  # 5u x 2s

    def test_expand_toward_want(self):
        pool = FixedPIMPool(10)
        pool.allocate("k", 4, now=0.0)
        assert pool.expand("k", 8, now=1.0) == 8
        assert pool.expand("k", 100, now=2.0) == 10  # capped by pool

    def test_double_allocate_rejected(self):
        pool = FixedPIMPool(10)
        pool.allocate("k", 2, now=0.0)
        with pytest.raises(SchedulingError):
            pool.allocate("k", 2, now=1.0)

    def test_release_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            FixedPIMPool(10).release("ghost", now=0.0)

    def test_time_backwards_rejected(self):
        pool = FixedPIMPool(10)
        pool.allocate("k", 2, now=5.0)
        with pytest.raises(SchedulingError):
            pool.release("k", now=1.0)

    def test_utilization_window(self):
        pool = FixedPIMPool(10)
        start = pool.busy_unit_seconds(0.0)
        pool.allocate("k", 10, now=0.0)
        pool.release("k", now=1.0)
        assert pool.utilization(0.0, 2.0, start) == pytest.approx(0.5)


class TestProgPIMCluster:
    def test_acquire_release(self):
        cluster = ProgPIMCluster(2)
        assert cluster.acquire("a", now=0.0)
        assert cluster.acquire("b", now=0.0)
        assert not cluster.acquire("c", now=0.0)
        cluster.release("a", now=1.0)
        assert cluster.acquire("c", now=1.0)

    def test_busy_integral(self):
        cluster = ProgPIMCluster(2)
        cluster.acquire("a", now=0.0)
        cluster.release("a", now=3.0)
        assert cluster.busy_pim_seconds(3.0) == pytest.approx(3.0)

    def test_double_acquire_rejected(self):
        cluster = ProgPIMCluster(2)
        cluster.acquire("a", now=0.0)
        with pytest.raises(SchedulingError):
            cluster.acquire("a", now=0.0)

    def test_release_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            ProgPIMCluster(1).release("ghost", now=0.0)
