"""Storage integrity: envelopes, verified reads, degraded mode, chaos, fsck.

The invariants under test mirror ``tools/check_chaos.py``'s subprocess
scenarios at unit granularity: a damaged object is never *served* (it is
quarantined and recounted as a corrupt miss), damage never outlives
``fsck --repair`` (repairs are byte-identical, proven here by a
hypothesis sweep over corruption positions), and a failing disk demotes
the store to memory-only instead of crashing the run.
"""

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosRule,
    ChaosSpecError,
    corrupt_bytes,
    injector,
    make_spec,
)
from repro.errors import CorruptObjectError
from repro.experiments.common import cached_graph, resolve_configuration
from repro.experiments.journal import RunJournal
from repro.sim import cache as sim_cache
from repro.sim import fsck as fsck_mod


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    """Throwaway cache, always-verify reads, no inherited chaos."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_VERIFY_READS", "always")
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.setattr(sim_cache, "_memory", {})
    sim_cache.reset_stats()
    injector.deactivate()
    yield
    injector.deactivate()
    sim_cache.reset_stats()


def _simulate(model="alexnet", steps=1, config="hetero-pim"):
    system, policy = resolve_configuration(config)
    graph = cached_graph(model)
    result = sim_cache.simulate_cached(graph, policy, system, steps)
    fingerprint = sim_cache.run_fingerprint(graph, policy, system, steps)
    return fingerprint, result


def _payload_offset(data: bytes) -> int:
    """First byte of the (corruptible) payload region of an envelope."""
    marker = b'"payload":'
    return data.index(marker) + len(marker)


# ---------------------------------------------------------------------------
# envelope format + verified reads
# ---------------------------------------------------------------------------
class TestEnvelope:
    def test_roundtrip_with_self_describing_meta(self):
        fingerprint, result = _simulate()
        path = sim_cache._object_path(fingerprint)
        envelope = json.loads(path.read_text())
        assert envelope["repro_object"] == sim_cache.OBJECT_FORMAT
        meta = envelope["meta"]
        assert meta["model"] == "alexnet"
        assert meta["backend"] == "hmc-hetero"
        assert meta["steps"] == 1
        assert meta["batch_size"] >= 1
        assert len(envelope["sha256"]) == 64
        loaded = sim_cache.read_object(path, fingerprint)
        assert loaded == result
        assert sim_cache.extract_meta(path.read_text()) == meta

    def test_meta_survives_payload_damage(self):
        fingerprint, _result = _simulate()
        path = sim_cache._object_path(fingerprint)
        data = bytearray(path.read_bytes())
        data[-15] ^= 0x08
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptObjectError):
            sim_cache.read_object(path, fingerprint)
        meta = sim_cache.extract_meta(path.read_text())
        assert meta is not None and meta["model"] == "alexnet"

    def test_corrupt_object_is_quarantined_not_served(self):
        fingerprint, result = _simulate()
        path = sim_cache._object_path(fingerprint)
        data = bytearray(path.read_bytes())
        data[_payload_offset(bytes(data)) + 5] ^= 0x01
        path.write_bytes(bytes(data))
        sim_cache._memory.clear()
        sim_cache.reset_stats()

        assert sim_cache.get(fingerprint) is None
        stats = sim_cache.stats()
        assert stats["misses"] == 1
        assert stats["misses_corrupt"] == 1
        assert stats["misses_absent"] == 0
        assert stats["quarantined"] == 1
        assert not path.exists()
        assert list(sim_cache.quarantine_dir().rglob("*.json"))

        # the slot is now empty: a re-read is an *absent* miss
        assert sim_cache.get(fingerprint) is None
        stats = sim_cache.stats()
        assert stats["misses"] == 2 and stats["misses_absent"] == 1

        # and a recompute self-heals the slot byte-stably
        healed_fp, healed = _simulate()
        assert healed_fp == fingerprint and healed == result
        assert sim_cache.read_object(path, fingerprint) == result

    def test_verify_mode_values(self, monkeypatch):
        for mode in ("off", "sample", "always"):
            monkeypatch.setenv("REPRO_VERIFY_READS", mode)
            assert sim_cache.verify_mode() == mode
        monkeypatch.setenv("REPRO_VERIFY_READS", "bogus")
        with pytest.raises(ValueError, match="REPRO_VERIFY_READS"):
            sim_cache.verify_mode()

    def test_sample_mode_verifies_one_in_n(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_READS", "sample")
        draws = [sim_cache.should_verify() for _ in range(
            2 * sim_cache.VERIFY_SAMPLE_EVERY
        )]
        assert draws.count(True) == 2
        monkeypatch.setenv("REPRO_VERIFY_READS", "off")
        assert not any(sim_cache.should_verify() for _ in range(8))


# ---------------------------------------------------------------------------
# degraded (memory-only) mode
# ---------------------------------------------------------------------------
class TestDegradedMode:
    def test_enospc_degrades_then_reprobe_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_REPROBE_S", "0")
        _fingerprint, result = _simulate()
        injector.activate(make_spec(1, [
            ChaosRule(site="cache.object_write", kind="enospc", one_in=1),
        ]))
        for i in range(4):
            sim_cache.put(f"{i:02d}" + "ab" * 31, result)
        stats = sim_cache.stats()
        assert stats["degraded"] == 1
        assert stats["write_errors"] == 3  # the 4th write was suppressed
        assert stats["degraded_skips"] == 1
        assert sim_cache.get("00" + "ab" * 31) is result  # memory tier holds

        # disk recovers: after the (floored) re-probe interval the next
        # write probes the disk again and succeeds
        injector.deactivate()
        time.sleep(0.15)
        sim_cache.put("ff" + "ab" * 31, result)
        assert sim_cache.stats()["degraded"] == 0
        assert sim_cache._object_path("ff" + "ab" * 31).exists()

    def test_degraded_journal_keeps_records_in_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_REPROBE_S", "3600")
        _fingerprint, result = _simulate()
        injector.activate(make_spec(1, [
            ChaosRule(site="cache.object_write", kind="enospc", one_in=1),
        ]))
        for i in range(3):
            sim_cache.put(f"{i:02d}" + "cd" * 31, result)
        assert sim_cache.degraded()
        injector.deactivate()

        journal = RunJournal.create("experiment", {"id": "x"}, run_id="deg")
        journal.record_job("aaa", "done")
        journal.close()
        assert journal.degraded
        assert journal.completed_fingerprints() == {"aaa"}
        assert not (sim_cache.cache_dir() / "journal" / "deg.jsonl").exists()


# ---------------------------------------------------------------------------
# chaos determinism
# ---------------------------------------------------------------------------
class TestChaos:
    def test_same_seed_fires_at_same_occurrences(self):
        spec = make_spec(42, [
            ChaosRule(site="cache.object_write", kind="bit_flip", one_in=3),
        ])
        patterns = []
        for _ in range(2):
            inj = injector.ChaosInjector(spec)
            patterns.append([
                inj.fire("cache.object_write") is not None
                for _ in range(30)
            ])
        assert patterns[0] == patterns[1]
        assert any(patterns[0]) and not all(patterns[0])

    def test_at_and_limit(self):
        inj = injector.ChaosInjector(make_spec(0, [
            ChaosRule(
                site="journal.append", kind="torn_write", at=(1, 3), limit=1
            ),
        ]))
        fired = [inj.fire("journal.append") is not None for _ in range(5)]
        assert fired == [False, True, False, False, False]

    def test_corrupt_bytes_respects_protect(self):
        rule = ChaosRule(site="cache.object_write", kind="bit_flip", at=(0,))
        data = b"H" * 50 + b"P" * 100
        for token in ("t1", "t2", "t3"):
            damaged = corrupt_bytes(data, rule, seed=7, token=token, protect=50)
            assert damaged != data
            assert damaged[:50] == data[:50]
        torn = ChaosRule(site="cache.object_write", kind="torn_write", at=(0,))
        truncated = corrupt_bytes(data, torn, seed=7, token="t", protect=50)
        assert 50 <= len(truncated) < len(data)
        assert truncated == data[: len(truncated)]

    def test_spec_validation(self):
        with pytest.raises(ChaosSpecError, match="unknown chaos site"):
            ChaosRule(site="nope", kind="bit_flip", at=(0,))
        with pytest.raises(ChaosSpecError, match="cannot fire at site"):
            ChaosRule(site="worker.kill", kind="bit_flip", at=(0,))
        with pytest.raises(ChaosSpecError, match="'at' occurrences"):
            ChaosRule(site="journal.append", kind="bit_flip")
        spec = make_spec(9, [
            ChaosRule(site="serve.execute", kind="slow_io", one_in=2),
        ])
        assert spec.__class__.from_json(spec.to_json()) == spec

    def test_env_activation_and_enospc(self, monkeypatch):
        spec = make_spec(3, [
            ChaosRule(site="cache.object_write", kind="enospc", one_in=1),
        ])
        monkeypatch.setenv("REPRO_CHAOS", spec.to_json())
        assert injector.active() is not None
        with pytest.raises(OSError) as err:
            injector.mangle("cache.object_write", b"data", token="t")
        assert err.value.errno == __import__("errno").ENOSPC
        # other sites are untouched
        assert injector.mangle("journal.append", b"data", token="t") == b"data"


# ---------------------------------------------------------------------------
# fsck
# ---------------------------------------------------------------------------
_SNAPSHOTS = {}


def _populated_snapshot():
    """Populate (once per cache dir) and snapshot the clean object bytes."""
    key = str(sim_cache.cache_dir())
    if key not in _SNAPSHOTS:
        _simulate("alexnet", 1)
        _simulate("lstm", 1, config="prog-pim")
        root = sim_cache.cache_dir() / "objects"
        _SNAPSHOTS[key] = {
            path: path.read_bytes() for path in sorted(root.rglob("*.json"))
        }
    return _SNAPSHOTS[key]


class TestFsck:
    def test_clean_store_is_clean(self):
        snapshot = _populated_snapshot()
        report = fsck_mod.fsck()
        assert report["objects"]["scanned"] == len(snapshot)
        assert report["objects"]["ok"] == len(snapshot)
        assert fsck_mod.clean(report)

    def test_detect_without_repair_leaves_the_file(self):
        snapshot = _populated_snapshot()
        path = next(iter(snapshot))
        data = bytearray(snapshot[path])
        data[-10] ^= 0x20
        path.write_bytes(bytes(data))
        report = fsck_mod.fsck(repair=False)
        assert report["objects"]["corrupt"] == 1
        assert not fsck_mod.clean(report)
        assert path.read_bytes() == bytes(data)  # untouched without --repair
        path.write_bytes(snapshot[path])

    def test_faulted_object_is_unrepairable_but_quarantined(self):
        fingerprint, result = _simulate()
        path = sim_cache._object_path(fingerprint)
        meta = sim_cache.extract_meta(path.read_text())
        meta["faulted"] = True  # faulted runs embed no replayable spec
        text, _offset = sim_cache._envelope(result, meta)
        damaged = bytearray(text.encode())
        damaged[-10] ^= 0x20
        path.write_bytes(bytes(damaged))
        sim_cache._memory.clear()
        report = fsck_mod.fsck(repair=True)
        assert report["objects"]["corrupt"] == 1
        assert report["objects"]["unrepairable"] == 1
        assert not path.exists()  # quarantined, not silently kept
        assert not fsck_mod.clean(report)

    @settings(max_examples=8, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=1),
        frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        kind=st.sampled_from(["bit_flip", "torn_write"]),
    )
    def test_repair_is_byte_identical_wherever_damage_lands(
        self, index, frac, kind
    ):
        snapshot = _populated_snapshot()
        for path, data in snapshot.items():
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(data)
        path = sorted(snapshot)[index]
        clean = snapshot[path]
        protect = _payload_offset(clean)
        offset = protect + int(frac * (len(clean) - protect - 1))
        if kind == "bit_flip":
            damaged = bytearray(clean)
            damaged[offset] ^= 0x10
            path.write_bytes(bytes(damaged))
        else:
            path.write_bytes(clean[: max(offset, protect + 1)])
        sim_cache._memory.clear()

        report = fsck_mod.fsck(repair=True)
        assert report["objects"]["corrupt"] == 1, report
        assert report["objects"]["repaired"] == 1, report
        assert fsck_mod.clean(report)
        assert path.read_bytes() == clean
