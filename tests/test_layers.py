"""GraphBuilder layers and tape-based backward construction."""

import pytest

from repro.errors import GraphError, ShapeError
from repro.nn.layers import GraphBuilder


def small_cnn() -> GraphBuilder:
    b = GraphBuilder("cnn", batch_size=2)
    x = b.input((2, 8, 8, 3))
    x = b.conv2d(x, 4, (3, 3), name="c1")
    x = b.max_pool(x, name="p1")
    x = b.flatten(x)
    x = b.dense(x, 10, activation=None, name="fc")
    b.softmax_loss(x, 10)
    return b


class TestForward:
    def test_conv_shapes(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 8, 8, 3))
        y = b.conv2d(x, 16, (3, 3), stride=(2, 2), name="c")
        assert y.shape == (2, 4, 4, 16)

    def test_conv_rejects_non_nhwc(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 8))
        with pytest.raises(ShapeError):
            b.conv2d(x, 4, (3, 3))

    def test_dense_rejects_non_2d(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4, 4, 3))
        with pytest.raises(ShapeError):
            b.dense(x, 8)

    def test_concat_channel_axis(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4, 4, 3))
        y = b.input((2, 4, 4, 5))
        z = b.concat([x, y])
        assert z.shape == (2, 4, 4, 8)

    def test_concat_rejects_mismatched_leading_dims(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4, 4, 3))
        y = b.input((2, 2, 2, 3))
        with pytest.raises(ShapeError):
            b.concat([x, y])

    def test_add_requires_same_shape(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        y = b.input((2, 5))
        with pytest.raises(ShapeError):
            b.add(x, y)

    def test_reshape_preserves_elements(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 12))
        y = b.reshape(x, (2, 3, 4))
        assert y.shape == (2, 3, 4)
        with pytest.raises(ShapeError):
            b.reshape(x, (2, 5))


class TestBackward:
    def test_finish_requires_loss(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        b.dense(x, 2, name="fc")
        with pytest.raises(GraphError):
            b.finish()

    def test_backward_emits_expected_op_types(self):
        g = small_cnn().finish()
        counts = g.invocation_counts()
        assert counts["Conv2D"] == 1
        assert counts["Conv2DBackpropFilter"] == 1
        # the first conv consumes the input: no input gradient needed
        assert counts.get("Conv2DBackpropInput", 0) == 0
        assert counts["MaxPoolGrad"] == 1
        assert counts["BiasAddGrad"] == 2  # conv bias + fc bias
        assert counts["ApplyAdam"] == 4  # conv w/b + fc w/b

    def test_two_conv_layers_get_input_gradient(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 8, 8, 3))
        x = b.conv2d(x, 4, (3, 3), name="c1")
        x = b.conv2d(x, 4, (3, 3), name="c2")
        x = b.flatten(x)
        x = b.dense(x, 10, activation=None, name="fc")
        b.softmax_loss(x, 10)
        g = b.finish()
        # only the second conv backprops to its input
        assert g.invocation_counts()["Conv2DBackpropInput"] == 1
        assert g.has_op("c2/Conv2DBackpropInput")

    def test_residual_add_merges_gradients_with_addn(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 8, 8, 4))
        h = b.conv2d(x, 4, (3, 3), name="c1")
        h2 = b.conv2d(h, 4, (3, 3), name="c2")
        out = b.add(h, h2, name="res")  # h consumed by c2 AND the add
        out = b.flatten(out)
        out = b.dense(out, 10, activation=None, name="fc")
        b.softmax_loss(out, 10)
        g = b.finish()
        assert g.invocation_counts()["AddN"] >= 1

    def test_concat_backward_emits_slices(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4, 4, 3))
        a = b.conv2d(x, 4, (1, 1), name="ba")
        c = b.conv2d(x, 4, (1, 1), name="bc")
        z = b.concat([a, c], name="cat")
        z = b.flatten(z)
        z = b.dense(z, 10, activation=None, name="fc")
        b.softmax_loss(z, 10)
        g = b.finish()
        assert g.invocation_counts()["Slice"] == 2

    def test_graph_is_acyclic_and_valid(self):
        small_cnn().finish().validate()

    def test_num_parameters(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        b._loss_seeds  # builder internal exists
        x = b.dense(x, 8, name="fc")
        assert b.num_parameters() == 4 * 8 + 8


class TestParameterSharing:
    def test_shared_dense_weights(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        h1 = b.dense(x, 4, name="t0", param_scope="cell")
        h2 = b.dense(h1, 4, name="t1", param_scope="cell")
        b.softmax_loss(
            b.dense(h2, 3, activation=None, name="out"), 3
        )
        g = b.finish()
        # one weight tensor, two MatMuls reading it, gradients combined
        assert g.invocation_counts()["ApplyAdam"] == 4  # cell w/b + out w/b
        assert b.num_parameters() == (4 * 4 + 4) + (4 * 3 + 3)

    def test_shared_param_shape_mismatch_rejected(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        b.dense(x, 4, name="t0", param_scope="cell")
        y = b.input((2, 8))
        with pytest.raises(GraphError):
            b.dense(y, 4, name="t1", param_scope="cell")

    def test_double_loss_seed_rejected(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        y = b.dense(x, 3, activation=None, name="fc")
        b.softmax_loss(y, 3, name="l1")
        with pytest.raises(GraphError):
            b.softmax_loss(y, 3, name="l2")

    def test_stop_gradient_blocks_backprop(self):
        b = GraphBuilder("g", batch_size=2)
        x = b.input((2, 4))
        h = b.dense(x, 4, name="first")
        h = b.stop_gradient(h)
        y = b.dense(h, 3, activation=None, name="second")
        b.softmax_loss(y, 3)
        g = b.finish()
        # no gradient flows into the first layer: its weights get no update
        assert not g.has_op("first/weights/ApplyAdam")
        assert g.has_op("second/weights/ApplyAdam")
