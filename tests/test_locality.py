"""Data-locality mapping of MAC work onto banks (section IV-D)."""

import pytest

from repro.config import default_config
from repro.hardware.hmc import StackGeometry
from repro.hardware.placement import place_fixed_pims
from repro.nn.models import build_model
from repro.runtime.locality import LocalityMapper, analyze_locality
from repro.pimcl.memory import SharedGlobalMemory


@pytest.fixture(scope="module")
def placement():
    return place_fixed_pims(StackGeometry(default_config().stack), 444)


@pytest.fixture(scope="module")
def report(placement):
    return analyze_locality(build_model("alexnet"), placement)


class TestAssignment:
    def test_covers_pool_eligible_ops(self, report):
        graph = build_model("alexnet")
        from repro.nn.ops import OffloadClass

        eligible = [
            op for op in graph.ops
            if op.offload_class in (OffloadClass.FIXED, OffloadClass.HYBRID)
            and op.cost.macs > 0
        ]
        assert len(report.assignments) == len(eligible)

    def test_grants_respect_bank_capacity(self, report, placement):
        for a in report.assignments:
            for bank, units in a.grants:
                assert units <= placement.units_in(bank)

    def test_grants_never_exceed_want(self, report):
        for a in report.assignments:
            assert a.units_granted <= a.units_wanted

    def test_home_bank_granted_first(self, report, placement):
        for a in report.assignments:
            if placement.units_in(a.home_bank) > 0:
                assert a.grants[0][0] == a.home_bank

    def test_small_ops_fully_colocated(self, report, placement):
        """Ops wanting fewer units than their home bank holds stay local."""
        for a in report.assignments:
            if a.units_wanted <= placement.units_in(a.home_bank):
                assert a.colocated_fraction == 1.0

    def test_wide_ops_spill(self, report, placement):
        wide = [a for a in report.assignments if a.units_wanted > 20]
        assert wide
        for a in wide:
            assert len(a.grants) > 1  # must span banks


class TestReport:
    def test_colocated_fraction_bounds(self, report):
        assert 0.0 < report.colocated_unit_fraction < 1.0

    def test_load_imbalance_reasonable(self, report):
        # spill-by-proximity spreads load; imbalance stays bounded
        assert 1.0 <= report.load_imbalance < 4.0

    def test_fully_colocated_ops_counted(self, report):
        assert 0 <= report.fully_colocated_ops <= len(report.assignments)


class TestHomeBank:
    def test_home_bank_follows_dominant_input(self, placement):
        graph = build_model("dcgan")
        memory = SharedGlobalMemory(n_banks=32)
        for spec in graph.tensors.values():
            memory.allocate(spec)
        mapper = LocalityMapper(placement, memory)
        conv = next(op for op in graph.ops if op.op_type == "Conv2D")
        home = mapper.home_bank(graph, conv)
        banks = {memory.home_bank(t) for t in conv.inputs}
        assert home in banks
        # the dominant input (the activation, far larger than weights)
        biggest = max(conv.inputs, key=lambda t: graph.tensor(t).nbytes)
        assert home == memory.home_bank(biggest)
