"""Remaining surface coverage: baselines registry, summary runner, misc."""

import pytest

from repro.baselines import CONFIGURATION_ORDER, build_configuration
from repro.errors import ReproError
from repro.experiments import summary
from repro.experiments.extensions import (
    format_inference_contrast,
    format_multistack,
    run_inference_contrast,
    run_multistack,
)


class TestBaselineRegistry:
    def test_order_covers_all_builders(self):
        for name in CONFIGURATION_ORDER:
            config, policy = build_configuration(name)
            assert policy.name
            policy.validate()

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ReproError, match="unknown configuration"):
            build_configuration("tpu")

    def test_policies_have_distinct_semantics(self):
        _, cpu = build_configuration("cpu")
        _, gpu = build_configuration("gpu")
        _, fixed = build_configuration("fixed-pim")
        assert not cpu.uses_gpu and gpu.uses_gpu
        assert not fixed.recursive_kernels and not fixed.operation_pipeline

    def test_prog_only_scales_out_arm_pims(self):
        config, policy = build_configuration("prog-pim")
        assert config.prog_pim.n_pims == config.stack.banks
        assert policy.prog_gang_limit > 1


class TestSummaryRunner:
    def test_artifact_list_covers_paper(self):
        headings = [h for h, _m in summary.ARTIFACTS]
        assert headings[0].startswith("Table I")
        assert sum("Figure" in h for h in headings) == 11

    def test_skip_tokens(self):
        # skip everything: cheap smoke of the skip path
        text = summary.run_all(
            skip=tuple(h for h, _m in summary.ARTIFACTS)
        )
        assert text.count("(skipped)") == len(summary.ARTIFACTS)


class TestExtensionFormatting:
    def test_multistack_report(self):
        result = run_multistack(models=("dcgan",), stack_counts=(1, 2))
        text = format_multistack(result)
        assert "dcgan" in text and "Speedup" in text
        assert result["dcgan"][2].speedup_vs_1 > 1.0

    def test_inference_contrast_report(self):
        result = run_inference_contrast(models=("dcgan",))
        text = format_inference_contrast(result)
        assert "dcgan" in text
        row = result["dcgan"]
        assert 0.5 < row.backward_flop_share < 0.8
        assert row.infer_step_s < row.train_step_s


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"

    def test_top_level_exports(self):
        import repro

        cfg = repro.default_config()
        assert cfg.fixed_pim.n_units == 444

    def test_all_public_modules_importable(self):
        import importlib

        for mod in (
            "repro.nn", "repro.nn.models", "repro.nn.numeric",
            "repro.nn.inference", "repro.profiling", "repro.hardware",
            "repro.hardware.dram_timing", "repro.pimcl", "repro.runtime",
            "repro.runtime.locality", "repro.sim", "repro.sim.timeline",
            "repro.sim.trace_io", "repro.baselines", "repro.experiments",
            "repro.cli",
        ):
            importlib.import_module(mod)
