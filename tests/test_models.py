"""Model-zoo structure checks against the paper's Table I invocations."""

import pytest

from repro.errors import ReproError
from repro.nn.models import (
    ALL_MODELS,
    CNN_MODELS,
    MODERN_MODELS,
    NON_CNN_MODELS,
    available_models,
    build_model,
    workload_family,
)


@pytest.fixture(scope="module")
def graphs():
    return {name: build_model(name) for name in ALL_MODELS}


class TestRegistry:
    def test_model_lists(self):
        assert (
            set(CNN_MODELS) | set(NON_CNN_MODELS) | set(MODERN_MODELS)
            == set(ALL_MODELS)
        )
        assert set(available_models()) == set(ALL_MODELS)

    def test_every_model_has_a_family(self):
        for model in ALL_MODELS:
            assert workload_family(model) is not None

    def test_corun_family_parsing(self):
        assert workload_family("vgg-19+4xword2vec") == "cnn+embedding"
        assert workload_family("vgg-19+*xword2vec") == "cnn+embedding"
        assert workload_family("vgg-19+4xmystery") is None
        assert workload_family("mystery") is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            build_model("lenet")

    def test_default_batch_sizes_match_paper(self, graphs):
        # section V-C: VGG/AlexNet/Inception 32, ResNet/Word2vec 128,
        # DCGAN 64, LSTM 20
        assert graphs["vgg-19"].batch_size == 32
        assert graphs["alexnet"].batch_size == 32
        assert graphs["inception-v3"].batch_size == 32
        assert graphs["resnet-50"].batch_size == 128
        assert graphs["word2vec"].batch_size == 128
        assert graphs["dcgan"].batch_size == 64
        assert graphs["lstm"].batch_size == 20
        assert graphs["transformer"].batch_size == 16
        assert graphs["gnn"].batch_size == 1024
        assert graphs["embedrec"].batch_size == 256

    def test_all_graphs_validate(self, graphs):
        for g in graphs.values():
            g.validate()

    def test_custom_batch_size(self):
        g = build_model("alexnet", batch_size=8)
        assert g.batch_size == 8
        g.validate()


class TestTable1Invocations:
    """Conv invocation counts per step match the paper's Table I."""

    def test_vgg19(self, graphs):
        counts = graphs["vgg-19"].invocation_counts()
        assert counts["Conv2D"] == 16
        assert counts["Conv2DBackpropFilter"] == 16
        assert counts["Conv2DBackpropInput"] == 15  # first conv needs none

    def test_alexnet(self, graphs):
        counts = graphs["alexnet"].invocation_counts()
        assert counts["Conv2D"] == 5
        assert counts["Conv2DBackpropFilter"] == 5
        assert counts["Conv2DBackpropInput"] == 4

    def test_dcgan(self, graphs):
        counts = graphs["dcgan"].invocation_counts()
        # two discriminator applications x two conv layers
        assert counts["Conv2D"] == 4
        assert counts["Conv2DTranspose"] == 2
        assert counts["Slice"] > 0  # paper lists Slice among DCGAN's MI ops
        assert counts["Mul"] > 0

    def test_resnet50_conv_population(self, graphs):
        counts = graphs["resnet-50"].invocation_counts()
        # 1 stem + 3x(3+4+6+3) bottleneck convs + 4 projection shortcuts
        assert counts["Conv2D"] == 53
        assert counts["FusedBatchNorm"] == 53
        assert counts["Add"] == 16  # one residual add per block

    def test_inception_has_branches(self, graphs):
        counts = graphs["inception-v3"].invocation_counts()
        assert counts["Conv2D"] > 80
        assert counts["ConcatV2"] == 11  # 3A + 1redA + 4B + 1redB + 2C
        assert counts["Slice"] > 30  # concat gradients

    def test_lstm_structure(self, graphs):
        counts = graphs["lstm"].invocation_counts()
        assert counts["Sigmoid"] >= 3 * 12 * 2  # 3 gates x T x layers
        assert counts["GatherV2"] == 1
        # weights shared across time: one update per layer + projection
        assert counts["ApplyAdam"] == 7

    def test_word2vec_structure(self, graphs):
        counts = graphs["word2vec"].invocation_counts()
        assert counts["GatherV2"] == 1
        assert counts["UnsortedSegmentSum"] == 1
        assert counts["NceLoss"] == 1


class TestModernFamilies:
    """Structure of the transformer / GNN / recommender workloads."""

    def test_transformer_attention_ops(self, graphs):
        counts = graphs["transformer"].invocation_counts()
        # 2 layers x (QK^T + attn-V) forward, each with 2 backward BMMs
        assert counts["BatchMatMul"] == 12
        assert counts["Softmax"] == 2
        assert counts["SoftmaxGrad"] == 2
        assert counts["LayerNorm"] == 4
        assert counts["LayerNormGrad"] == 4
        # 3 dropouts per layer, each with a backward
        assert counts["Dropout"] == 6
        assert counts["DropoutGrad"] == 6
        assert counts["GatherV2"] == 1  # token embedding

    def test_gnn_message_passing_ops(self, graphs):
        counts = graphs["gnn"].invocation_counts()
        # 2 layers: fwd gather + bwd segment-grad gather x 2
        assert counts["GatherV2"] == 4
        assert counts["UnsortedSegmentSum"] == 3
        assert counts["ConcatV2"] == 2

    def test_embedrec_sparse_tables(self, graphs):
        counts = graphs["embedrec"].invocation_counts()
        assert counts["GatherV2"] == 8  # one gather per table
        assert counts["UnsortedSegmentSum"] == 8

    def test_embedrec_sparse_adam_touches_gathered_rows_only(self, graphs):
        from repro.nn.models.embedrec import (
            EMBED_DIM, IDS_PER_SAMPLE, TABLE_ROWS,
        )
        tables = [
            op for op in graphs["embedrec"].ops_of_type("ApplyAdam")
            if op.attrs.get("sparse_rows")
        ]
        assert len(tables) == 8
        batch = graphs["embedrec"].batch_size
        rows = batch * IDS_PER_SAMPLE
        for op in tables:
            assert op.attrs["sparse_rows"] == rows
            # adam_cost(n): 4 muls per updated element, far below the
            # full-table count
            assert op.cost.muls == 4 * rows * EMBED_DIM
            assert op.cost.muls < 4 * TABLE_ROWS * EMBED_DIM

    def test_dense_embedding_update_is_unchanged(self, graphs):
        # word2vec keeps the dense path: Adam walks the whole table
        (op,) = [
            op for op in graphs["word2vec"].ops_of_type("ApplyAdam")
            if op.attrs.get("layer") == "embedding/table"
        ]
        assert "sparse_rows" not in op.attrs
        assert op.cost.muls == 4 * 50000 * 200


class TestDeterministicDropout:
    """Dropout cost/energy derive purely from (graph, config, steps):
    no schedule-time sampling, so fingerprints and results reproduce."""

    def test_rebuilt_graph_has_identical_fingerprint(self):
        from repro import api
        from repro.sim import cache as sim_cache

        system, policy = api.resolve_configuration("hetero-pim")
        fingerprints = set()
        for _ in range(2):
            graph = build_model("transformer")
            fingerprints.add(
                sim_cache.run_fingerprint(graph, policy, system, 2)
            )
        assert len(fingerprints) == 1

    def test_repeated_simulation_is_byte_identical(self):
        from repro import api
        from repro.sim.simulation import Simulation

        system, policy = api.resolve_configuration("hetero-pim")
        runs = [
            Simulation(
                build_model("transformer"), policy, config=system, steps=1
            ).run().to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestScale:
    def test_vgg_flop_scale(self, graphs):
        # VGG-19 forward is ~19.6 GMAC/image; one step (fwd+bwd) at batch
        # 32 lands near 1.9 TMAC
        total = graphs["vgg-19"].total_cost()
        assert 1.5e12 < total.macs < 2.5e12

    def test_resnet_working_set_exceeds_gpu_memory(self, graphs):
        # the basis of the paper's ResNet-over-GPU result (batch 128)
        assert graphs["resnet-50"].resident_bytes() > 11 * 1024**3

    def test_other_models_fit_gpu_memory(self, graphs):
        for name in ("vgg-19", "alexnet", "dcgan", "inception-v3"):
            assert graphs[name].resident_bytes() < 11 * 1024**3

    def test_parameter_heavy_vgg(self, graphs):
        # VGG-19 has ~143M parameters; Adam updates them all each step
        adam_inputs = sum(
            g.cost.bytes_in
            for g in graphs["vgg-19"].ops_of_type("ApplyAdam")
        )
        n_params = adam_inputs / (4 * 4)  # 4 tensors x 4 bytes
        assert 1.2e8 < n_params < 1.6e8
