"""Model-zoo structure checks against the paper's Table I invocations."""

import pytest

from repro.errors import ReproError
from repro.nn.models import (
    ALL_MODELS,
    CNN_MODELS,
    NON_CNN_MODELS,
    available_models,
    build_model,
)


@pytest.fixture(scope="module")
def graphs():
    return {name: build_model(name) for name in ALL_MODELS}


class TestRegistry:
    def test_model_lists(self):
        assert set(CNN_MODELS) | set(NON_CNN_MODELS) == set(ALL_MODELS)
        assert set(available_models()) == set(ALL_MODELS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            build_model("lenet")

    def test_default_batch_sizes_match_paper(self, graphs):
        # section V-C: VGG/AlexNet/Inception 32, ResNet/Word2vec 128,
        # DCGAN 64, LSTM 20
        assert graphs["vgg-19"].batch_size == 32
        assert graphs["alexnet"].batch_size == 32
        assert graphs["inception-v3"].batch_size == 32
        assert graphs["resnet-50"].batch_size == 128
        assert graphs["word2vec"].batch_size == 128
        assert graphs["dcgan"].batch_size == 64
        assert graphs["lstm"].batch_size == 20

    def test_all_graphs_validate(self, graphs):
        for g in graphs.values():
            g.validate()

    def test_custom_batch_size(self):
        g = build_model("alexnet", batch_size=8)
        assert g.batch_size == 8
        g.validate()


class TestTable1Invocations:
    """Conv invocation counts per step match the paper's Table I."""

    def test_vgg19(self, graphs):
        counts = graphs["vgg-19"].invocation_counts()
        assert counts["Conv2D"] == 16
        assert counts["Conv2DBackpropFilter"] == 16
        assert counts["Conv2DBackpropInput"] == 15  # first conv needs none

    def test_alexnet(self, graphs):
        counts = graphs["alexnet"].invocation_counts()
        assert counts["Conv2D"] == 5
        assert counts["Conv2DBackpropFilter"] == 5
        assert counts["Conv2DBackpropInput"] == 4

    def test_dcgan(self, graphs):
        counts = graphs["dcgan"].invocation_counts()
        # two discriminator applications x two conv layers
        assert counts["Conv2D"] == 4
        assert counts["Conv2DTranspose"] == 2
        assert counts["Slice"] > 0  # paper lists Slice among DCGAN's MI ops
        assert counts["Mul"] > 0

    def test_resnet50_conv_population(self, graphs):
        counts = graphs["resnet-50"].invocation_counts()
        # 1 stem + 3x(3+4+6+3) bottleneck convs + 4 projection shortcuts
        assert counts["Conv2D"] == 53
        assert counts["FusedBatchNorm"] == 53
        assert counts["Add"] == 16  # one residual add per block

    def test_inception_has_branches(self, graphs):
        counts = graphs["inception-v3"].invocation_counts()
        assert counts["Conv2D"] > 80
        assert counts["ConcatV2"] == 11  # 3A + 1redA + 4B + 1redB + 2C
        assert counts["Slice"] > 30  # concat gradients

    def test_lstm_structure(self, graphs):
        counts = graphs["lstm"].invocation_counts()
        assert counts["Sigmoid"] >= 3 * 12 * 2  # 3 gates x T x layers
        assert counts["GatherV2"] == 1
        # weights shared across time: one update per layer + projection
        assert counts["ApplyAdam"] == 7

    def test_word2vec_structure(self, graphs):
        counts = graphs["word2vec"].invocation_counts()
        assert counts["GatherV2"] == 1
        assert counts["UnsortedSegmentSum"] == 1
        assert counts["NceLoss"] == 1


class TestScale:
    def test_vgg_flop_scale(self, graphs):
        # VGG-19 forward is ~19.6 GMAC/image; one step (fwd+bwd) at batch
        # 32 lands near 1.9 TMAC
        total = graphs["vgg-19"].total_cost()
        assert 1.5e12 < total.macs < 2.5e12

    def test_resnet_working_set_exceeds_gpu_memory(self, graphs):
        # the basis of the paper's ResNet-over-GPU result (batch 128)
        assert graphs["resnet-50"].resident_bytes() > 11 * 1024**3

    def test_other_models_fit_gpu_memory(self, graphs):
        for name in ("vgg-19", "alexnet", "dcgan", "inception-v3"):
            assert graphs[name].resident_bytes() < 11 * 1024**3

    def test_parameter_heavy_vgg(self, graphs):
        # VGG-19 has ~143M parameters; Adam updates them all each step
        adam_inputs = sum(
            g.cost.bytes_in
            for g in graphs["vgg-19"].ops_of_type("ApplyAdam")
        )
        n_params = adam_inputs / (4 * 4)  # 4 tensors x 4 bytes
        assert 1.2e8 < n_params < 1.6e8
