"""Numeric executor + finite-difference gradient verification."""

import numpy as np
import pytest

from repro.nn.layers import GraphBuilder
from repro.nn.numeric import (
    NumericExecutionError,
    NumericExecutor,
    _conv2d,
    _conv2d_backprop_filter,
    _conv2d_backprop_input,
    _max_pool,
    check_gradients,
    param_gradient_tensors,
    random_feeds,
)


def mlp(batch=3, in_dim=5, hidden=7, classes=4):
    b = GraphBuilder("mlp", batch_size=batch)
    x = b.input((batch, in_dim))
    h = b.dense(x, hidden, name="fc1")
    logits = b.dense(h, classes, activation=None, name="fc2")
    b.softmax_loss(logits, classes)
    return b.finish()


class TestConvPrimitives:
    def test_conv_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 4, 4, 1))
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        out = _conv2d(x, w, (1, 1), "SAME")
        np.testing.assert_allclose(out, x)

    def test_conv_valid_shape(self):
        x = np.ones((2, 5, 5, 3))
        w = np.ones((3, 3, 3, 4))
        out = _conv2d(x, w, (1, 1), "VALID")
        assert out.shape == (2, 3, 3, 4)
        # interior of a ones-conv = kh*kw*cin
        np.testing.assert_allclose(out, 27.0)

    def test_conv_same_stride2_shape(self):
        x = np.ones((1, 7, 7, 2))
        w = np.ones((3, 3, 2, 1))
        out = _conv2d(x, w, (2, 2), "SAME")
        assert out.shape == (1, 4, 4, 1)

    def test_backprop_filter_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 5, 5, 2))
        w = rng.normal(size=(3, 3, 2, 3))
        g = rng.normal(size=_conv2d(x, w, (1, 1), "SAME").shape)
        dw = _conv2d_backprop_filter(x, g, (3, 3), (1, 1), "SAME")
        eps = 1e-6
        idx = (1, 2, 0, 1)
        w2 = w.copy(); w2[idx] += eps
        w3 = w.copy(); w3[idx] -= eps
        numeric = (
            np.sum(_conv2d(x, w2, (1, 1), "SAME") * g)
            - np.sum(_conv2d(x, w3, (1, 1), "SAME") * g)
        ) / (2 * eps)
        assert dw[idx] == pytest.approx(numeric, rel=1e-5)

    def test_backprop_input_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 4, 4, 2))
        w = rng.normal(size=(3, 3, 2, 2))
        g = rng.normal(size=_conv2d(x, w, (2, 2), "SAME").shape)
        dx = _conv2d_backprop_input(g, w, (2, 2), "SAME", x.shape)
        eps = 1e-6
        idx = (0, 1, 3, 1)
        x2 = x.copy(); x2[idx] += eps
        x3 = x.copy(); x3[idx] -= eps
        numeric = (
            np.sum(_conv2d(x2, w, (2, 2), "SAME") * g)
            - np.sum(_conv2d(x3, w, (2, 2), "SAME") * g)
        ) / (2 * eps)
        assert dx[idx] == pytest.approx(numeric, rel=1e-5)

    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = _max_pool(x, (2, 2), (2, 2), "VALID")
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])


class TestExecutor:
    def test_forward_loss_is_finite(self):
        g = mlp()
        ex = NumericExecutor(g)
        env = ex.run(random_feeds(g))
        assert np.isfinite(ex.loss(env))

    def test_all_tensors_materialized(self):
        g = mlp()
        env = NumericExecutor(g).run(random_feeds(g))
        for name, spec in g.tensors.items():
            assert name in env, name
            assert tuple(np.shape(env[name])) == spec.shape

    def test_unsupported_graph_rejected(self):
        from repro.nn.models import build_model

        with pytest.raises(NumericExecutionError, match="unsupported"):
            NumericExecutor(build_model("word2vec"))

    def test_missing_feed_detected(self):
        g = mlp()
        feeds = random_feeds(g)
        feeds.pop("fc1/weights")
        with pytest.raises(NumericExecutionError, match="missing input"):
            NumericExecutor(g).run(feeds)

    def test_param_gradient_tensors(self):
        g = mlp()
        grads = param_gradient_tensors(g)
        assert set(grads) == {
            "fc1/weights", "fc1/bias", "fc2/weights", "fc2/bias"
        }

    def test_adam_update_moves_against_gradient(self):
        g = mlp()
        env = NumericExecutor(g).run(random_feeds(g))
        grads = param_gradient_tensors(g)
        for param, grad_tensor in grads.items():
            update_op = g.op(g.param_update_op(param))
            updated = env[update_op.outputs[0]]
            delta = updated - env[param]
            grad = env[grad_tensor]
            moved = np.abs(grad) > 1e-12
            assert np.all(np.sign(delta[moved]) == -np.sign(grad[moved]))


class TestGradientCheck:
    def test_mlp_gradients(self):
        g = mlp()
        errors = check_gradients(g, random_feeds(g, seed=3))
        assert max(errors.values()) < 1e-4

    def test_cnn_gradients_with_pool_and_stride(self):
        b = GraphBuilder("cnn", batch_size=2)
        x = b.input((2, 8, 8, 2))
        h = b.conv2d(x, 3, (3, 3), stride=(2, 2), name="c1")
        h = b.conv2d(h, 4, (3, 3), padding="VALID", activation=None, name="c2")
        h = b.relu(h, name="r2")
        h = b.max_pool(h, (2, 2), (2, 2), name="p")
        h = b.flatten(h)
        logits = b.dense(h, 3, activation=None, name="out")
        b.softmax_loss(logits, 3)
        errors = check_gradients(b.finish(), random_feeds(b.graph, seed=4),
                                 samples_per_param=3)
        assert max(errors.values()) < 1e-4

    def test_residual_and_concat_gradients(self):
        b = GraphBuilder("branchy", batch_size=2)
        x = b.input((2, 6, 6, 3))
        h = b.conv2d(x, 4, (3, 3), name="c1")
        h2 = b.conv2d(h, 4, (3, 3), activation=None, name="c2")
        r = b.relu(b.add(h, h2, name="res"), name="rr")
        branch = b.conv2d(r, 2, (1, 1), name="b1")
        cat = b.concat([r, branch], name="cat")
        f = b.flatten(cat)
        logits = b.dense(f, 3, activation=None, name="out")
        b.softmax_loss(logits, 3)
        errors = check_gradients(b.finish(), random_feeds(b.graph, seed=5),
                                 samples_per_param=3)
        assert max(errors.values()) < 1e-4

    def test_shared_parameter_gradients(self):
        """Weight sharing sums gradients across uses (the AddN path)."""
        b = GraphBuilder("shared", batch_size=2)
        x = b.input((2, 6))
        h = b.dense(x, 6, name="t0", param_scope="cell")
        h = b.dense(h, 6, name="t1", param_scope="cell")
        logits = b.dense(h, 3, activation=None, name="out")
        b.softmax_loss(logits, 3)
        errors = check_gradients(b.finish(), random_feeds(b.graph, seed=6))
        assert max(errors.values()) < 1e-4

    def test_detects_wrong_gradients(self):
        """A corrupted analytic gradient must fail the check."""
        g = mlp()
        feeds = random_feeds(g, seed=7)
        # sanity: the check passes, then break the executor's Relu rule
        check_gradients(g, feeds, params=["fc1/weights"], samples_per_param=2)
        import repro.nn.numeric as numeric_mod

        original = numeric_mod.NumericExecutor._dispatch

        def corrupted(self, op, args, env):
            out = original(self, op, args, env)
            if op.op_type == "BiasAddGrad":
                return out * 1.5  # wrong scale
            return out

        numeric_mod.NumericExecutor._dispatch = corrupted
        try:
            with pytest.raises(AssertionError, match="gradient mismatch"):
                check_gradients(
                    g, feeds, params=["fc1/bias"], samples_per_param=2
                )
        finally:
            numeric_mod.NumericExecutor._dispatch = original


class TestRecurrentCellGradients:
    def test_lstm_cell_chain_gradients(self):
        """Two LSTM timesteps with shared weights: gate slicing (Slice +
        Pad scatter), sigmoid/tanh gates and the c/h recurrences all
        verify against finite differences."""
        H = 4
        b = GraphBuilder("mini-lstm", batch_size=2)
        x0 = b.input((2, H), name="x0")
        x1 = b.input((2, H), name="x1")
        h = b.input((2, H), name="h0")
        c = b.input((2, H), name="c0")
        for t, x in enumerate((x0, x1)):
            xh = b.concat([x, h], name=f"t{t}/xh")
            gates = b.dense(xh, 4 * H, activation=None, name=f"t{t}/gates",
                            param_scope="cell")
            i = b.activation(
                b.slice_channels(gates, 0, H, name=f"t{t}/i"),
                "sigmoid", name=f"t{t}/si")
            f = b.activation(
                b.slice_channels(gates, H, H, name=f"t{t}/f"),
                "sigmoid", name=f"t{t}/sf")
            g = b.activation(
                b.slice_channels(gates, 2 * H, H, name=f"t{t}/g"),
                "tanh", name=f"t{t}/tg")
            o = b.activation(
                b.slice_channels(gates, 3 * H, H, name=f"t{t}/o"),
                "sigmoid", name=f"t{t}/so")
            c = b.add(b.multiply(f, c, name=f"t{t}/fc"),
                      b.multiply(i, g, name=f"t{t}/ig"), name=f"t{t}/c")
            h = b.multiply(
                o, b.activation(c, "tanh", name=f"t{t}/tc"), name=f"t{t}/h")
        logits = b.dense(h, 3, activation=None, name="proj")
        b.softmax_loss(logits, 3)
        graph = b.finish()
        errors = check_gradients(
            graph, random_feeds(graph, seed=9), samples_per_param=4
        )
        assert max(errors.values()) < 1e-4

    def test_batch_slice_gradients(self):
        """slice_batch + its Pad scatter gradient verify numerically."""
        b = GraphBuilder("bs", batch_size=4)
        x = b.input((4, 6))
        h = b.dense(x, 6, name="fc")
        top = b.slice_batch(h, 0, 2, name="top")
        logits = b.dense(top, 3, activation=None, name="out")
        b.softmax_loss(logits, 3)
        graph = b.finish()
        errors = check_gradients(graph, random_feeds(graph, seed=11))
        assert max(errors.values()) < 1e-4
