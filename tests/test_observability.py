"""Observability layer: metrics registry, run reports, Chrome traces.

Covers the determinism contract (observability must never change cached
results: serial == parallel == warm-cache == observed), the versioned
serialization round trips, and the Chrome Trace Event export including
device-lane mapping for configurations without a GPU.
"""

import hashlib
import json

import pytest

from repro import api
from repro.experiments import run_model_on, run_report_on, runner
from repro.obs import validate_chrome_trace
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeighted,
    merge_snapshots,
)
from repro.obs.report import REPORT_SCHEMA_VERSION, RunReport
from repro.obs.trace import build_trace_events, to_chrome_payload
from repro.sim import cache as sim_cache
from repro.sim.results import RESULT_SCHEMA_VERSION, RunResult, canonical_dumps

MODEL = "lstm"  # smallest evaluation workload: keeps these tests quick


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    sim_cache._memory.clear()
    sim_cache.reset_stats()
    runner.set_jobs(None)
    yield
    sim_cache._memory.clear()
    runner.set_jobs(None)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        c.inc(4)
        reg.gauge("depth").set(7)
        snap = reg.snapshot()
        assert snap["events"] == 5
        assert snap["depth"] == 7

    def test_time_weighted_mean(self):
        reg = MetricsRegistry()
        tw = reg.time_weighted("load")
        tw.set(0.0, now=0.0)
        tw.set(4.0, now=1.0)  # 0 over [0,1)
        assert tw.integral(2.0) == pytest.approx(4.0)  # 4 over [1,2)
        assert tw.mean(2.0) == pytest.approx(2.0)

    def test_snapshot_is_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.gauge("z").set(1)
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert json.loads(canonical_dumps(snap)) == snap

    def test_disabled_registry_is_null(self):
        assert not NULL_REGISTRY.enabled
        c = NULL_REGISTRY.counter("x")
        c.inc(10)
        NULL_REGISTRY.gauge("y").set(3)
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.snapshot() == {}
        # all disabled instruments are one shared no-op object
        assert c is NULL_REGISTRY.time_weighted("z")

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        with pytest.raises(Exception):
            reg.gauge("n")  # name already bound to a different type

    def test_merge_snapshots(self):
        merged = merge_snapshots([{"a": 1, "b": 2.5}, {"a": 3}])
        assert merged == {"a": 4, "b": 2.5}

    def test_instrument_classes_standalone(self):
        c = Counter("c")
        c.inc(2)
        assert c.value == 2
        g = Gauge("g")
        g.set((1, 2))
        assert g.value == (1, 2)
        tw = TimeWeighted("t")
        tw.set(1.0, now=0.0)
        assert tw.integral(3.0) == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# result / report serialization
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_run_result_round_trip_is_exact(self):
        result = run_model_on(MODEL, "hetero-pim")
        clone = RunResult.from_json(result.to_json())
        assert clone == result
        assert clone.to_json() == result.to_json()
        assert result.to_dict()["schema"] == RESULT_SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        result = run_model_on(MODEL, "hetero-pim")
        payload = result.to_dict()
        payload["schema"] = 99
        with pytest.raises(Exception):
            RunResult.from_dict(payload)

    def test_run_report_round_trip(self):
        report = api.simulate(MODEL, "hetero-pim")
        clone = RunReport.from_json(report.to_json())
        assert clone.result == report.result
        assert clone.to_json() == report.to_json()
        assert report.to_dict()["report_schema"] == REPORT_SCHEMA_VERSION

    def test_disk_tier_stores_canonical_json(self):
        result = run_model_on(MODEL, "hetero-pim")
        files = list((sim_cache.cache_dir() / "objects").rglob("*.json"))
        assert files
        # The envelope embeds the canonical result JSON verbatim as its
        # payload slice, checksummed by the header's sha256 field.
        text = files[0].read_text()
        head, sep, tail = text.partition('"payload":')
        assert sep and tail.endswith("}")
        payload = tail[:-1]
        assert payload == result.to_json()
        envelope = json.loads(text)
        assert envelope["repro_object"] == 1
        assert envelope["sha256"] == hashlib.sha256(
            payload.encode()
        ).hexdigest()


# ---------------------------------------------------------------------------
# aggregate consistency
# ---------------------------------------------------------------------------
class TestAggregates:
    def test_occupancy_histogram_sums_to_makespan(self):
        result = run_model_on(MODEL, "hetero-pim")
        hist = result.bank_occupancy_hist_s
        assert len(hist) == 17  # idle bin + 16 busy-fraction bins
        assert all(v >= 0 for v in hist)
        assert sum(hist) == pytest.approx(result.makespan_s, rel=1e-9)
        assert sum(hist[1:]) > 0  # the pool did run

    def test_busy_fractions_are_fractions(self):
        result = run_model_on(MODEL, "hetero-pim")
        busy = result.device_busy_fraction
        assert set(busy) == {"cpu", "prog", "fixed"}  # no GPU lane here
        for fraction in busy.values():
            assert 0.0 <= fraction <= 1.0
        # fixed-pool busy fraction must agree with the energy model's
        # busy-unit-seconds over total capacity-time
        expected = result.usage.fixed_unit_busy_s / (444 * result.makespan_s)
        assert busy["fixed"] == pytest.approx(expected, rel=1e-9)

    def test_gpu_config_reports_gpu_lane(self):
        result = run_model_on(MODEL, "gpu")
        assert "gpu" in result.device_busy_fraction

    def test_queue_wait_nonnegative(self):
        result = run_model_on(MODEL, "hetero-pim")
        assert result.queue_wait_s
        for wait in result.queue_wait_s.values():
            assert wait >= 0.0

    def test_selection_log_on_profiled_policy(self):
        result = run_model_on(MODEL, "hetero-pim")
        sel = result.selection
        assert sel is not None
        assert 0.0 < sel["time_coverage"] <= 1.0
        assert sel["decisions"]
        selected = [d for d in sel["decisions"] if d["selected"]]
        assert {d["op_type"] for d in selected} == set(sel["candidate_types"])

    def test_static_policy_has_no_selection(self):
        result = run_model_on(MODEL, "cpu")
        assert result.selection is None

    def test_metrics_snapshot_present(self):
        result = run_model_on(MODEL, "hetero-pim")
        assert result.metrics["engine.events_processed"] == result.events_processed
        assert result.metrics["fixed.units"] == 444


# ---------------------------------------------------------------------------
# determinism: observability must not perturb results
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_observed_equals_cached(self):
        fresh = api.simulate(MODEL, "hetero-pim", observe=True)
        cached = api.simulate(MODEL, "hetero-pim")
        assert cached.result == fresh.result
        assert cached.result.to_json() == fresh.result.to_json()

    def test_warm_cache_round_trip_identical(self):
        first = run_model_on(MODEL, "hetero-pim")
        sim_cache._memory.clear()  # force the disk (JSON) tier
        again = run_model_on(MODEL, "hetero-pim")
        assert again == first
        assert again.to_json() == first.to_json()

    def test_parallel_jobs_identical_to_serial(self):
        serial = [run_model_on(MODEL, c) for c in ("cpu", "hetero-pim")]
        sim_cache._memory.clear()
        sim_cache.clear(disk=True)
        runner.set_jobs(2)
        try:
            parallel = [run_model_on(MODEL, c) for c in ("cpu", "hetero-pim")]
        finally:
            runner.set_jobs(None)
        for a, b in zip(serial, parallel):
            assert a.to_json() == b.to_json()

    def test_registry_does_not_change_results(self):
        registry = MetricsRegistry()
        observed = api.simulate(MODEL, "hetero-pim", observe=registry)
        assert registry.snapshot()  # the run published into it
        plain = api.simulate(MODEL, "hetero-pim")
        assert observed.result.to_json() == plain.result.to_json()


# ---------------------------------------------------------------------------
# chrome trace export
# ---------------------------------------------------------------------------
class TestChromeTrace:
    def test_export_validates(self, tmp_path):
        report = api.simulate(MODEL, "hetero-pim", observe=True)
        path = tmp_path / "trace.json"
        n = report.save_trace(path)
        events = validate_chrome_trace(path)
        assert len(events) == n
        payload = json.loads(path.read_text())
        assert payload["otherData"]["model"] == MODEL

    def test_events_sorted_and_matched(self):
        report = api.simulate(MODEL, "hetero-pim", observe=True)
        events = report.trace_events()
        timed = [e for e in events if e["ph"] != "M"]
        assert timed == sorted(
            timed, key=lambda e: (e["ts"], e["tid"], e["name"])
        )
        validate_chrome_trace({"traceEvents": events})

    def test_lane_mapping_without_gpu(self):
        report = api.simulate(MODEL, "cpu", observe=True)
        events = report.trace_events()
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "cpu" in lanes
        assert not any(lane.startswith(("gpu", "prog", "fixed")) for lane in lanes)

    def test_task_events_cover_timeline(self):
        report = api.simulate(MODEL, "hetero-pim", observe=True)
        events = report.trace_events()
        tasks = [e for e in events if e.get("cat") == "task"]
        assert len(tasks) == len(report.timeline.entries)
        assert all(e["dur"] >= 0 for e in tasks)

    def test_selection_annotations_present(self):
        report = api.simulate(MODEL, "hetero-pim", observe=True)
        cats = {e.get("cat") for e in report.trace_events()}
        assert "selection" in cats

    def test_queue_wait_lane_appears_under_contention(self):
        report = api.simulate(MODEL, "hetero-pim", observe=True)
        lanes = {
            e["args"]["name"]
            for e in report.trace_events()
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(lane.endswith(" queue") for lane in lanes)

    def test_unobserved_report_refuses_trace(self):
        report = api.simulate(MODEL, "hetero-pim")
        with pytest.raises(Exception):
            report.trace_events()

    def test_validator_rejects_unsorted(self):
        events = build_trace_events([])
        bad = to_chrome_payload(
            events
            + [
                {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 1.0},
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 1.0, "dur": 1.0},
            ]
        )
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_validator_rejects_unmatched_begin(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0.0},
            ]
        }
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


# ---------------------------------------------------------------------------
# facade
# ---------------------------------------------------------------------------
class TestApiFacade:
    def test_listings(self):
        assert MODEL in api.list_models()
        assert "hetero-pim" in api.list_configurations()
        assert "neurocube" in api.list_configurations()

    def test_steps_validated(self):
        with pytest.raises(ValueError):
            api.simulate(MODEL, "hetero-pim", steps=0)

    def test_frequency_scale(self):
        fast = api.simulate(MODEL, "hetero-pim", frequency_scale=2.0)
        plain = api.simulate(MODEL, "hetero-pim")
        assert fast.step_time_s < plain.step_time_s

    def test_run_report_on_matches_run_model_on(self):
        report = run_report_on(MODEL, "hetero-pim")
        result = run_model_on(MODEL, "hetero-pim")
        assert report.result == result

    def test_top_level_exports(self):
        import repro

        assert repro.simulate is api.simulate
        assert repro.RunReport is RunReport

    def test_old_entry_point_warns(self):
        from repro.baselines import build_configuration
        from repro.nn.models import build_model
        from repro.sim import simulate as old_simulate

        config, policy = build_configuration("cpu")
        graph = build_model(MODEL)
        with pytest.warns(DeprecationWarning):
            old_simulate(graph, policy, config)

    def test_observed_run_warms_cache(self):
        api.simulate(MODEL, "hetero-pim", observe=True)
        report = api.simulate(MODEL, "hetero-pim")
        assert report.cache_stats["memory_hits"] == 1
        assert report.cache_stats["misses"] == 0
