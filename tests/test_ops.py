"""Operation registry and cost-model constructors."""

import pytest

from repro.errors import UnknownOpError
from repro.nn.ops import (
    OP_TYPES,
    OffloadClass,
    Op,
    OpCost,
    adam_cost,
    conv2d_cost,
    data_movement_cost,
    elementwise_cost,
    matmul_cost,
    op_type_info,
    pool_cost,
    reduction_cost,
)


class TestRegistry:
    def test_paper_key_ops_are_registered(self):
        for name in (
            "MatMul", "Conv2D", "Conv2DBackpropFilter", "Conv2DBackpropInput",
            "BiasAddGrad", "Relu", "MaxPool", "ApplyAdam", "Slice",
        ):
            assert name in OP_TYPES

    def test_offload_classes_match_paper_examples(self):
        # section II-A: MatMul/Conv2D decompose to multiply-add
        assert op_type_info("MatMul").offload_class is OffloadClass.FIXED
        assert op_type_info("Conv2D").offload_class is OffloadClass.FIXED
        # complex ops become recursive PIM kernels (Figure 6)
        assert (
            op_type_info("Conv2DBackpropFilter").offload_class
            is OffloadClass.HYBRID
        )
        # conditional / sampling / optimizer ops target the programmable PIM
        for name in ("Relu", "MaxPool", "ApplyAdam"):
            assert op_type_info(name).offload_class is OffloadClass.PROG

    def test_unknown_type_raises(self):
        with pytest.raises(UnknownOpError):
            op_type_info("NotAnOp")

    def test_backward_convs_are_less_cpu_efficient_than_forward(self):
        # this asymmetry produces the paper's Table I time distribution
        fwd = op_type_info("Conv2D").cpu_compute_eff
        assert op_type_info("Conv2DBackpropFilter").cpu_compute_eff < fwd
        assert op_type_info("Conv2DBackpropInput").cpu_compute_eff < fwd

    def test_host_traffic_factor_defaults_to_traffic_factor(self):
        info = op_type_info("Slice")
        assert info.cpu_traffic_factor is None
        assert info.host_traffic_factor == info.traffic_factor


class TestOpCost:
    def test_aggregates(self):
        c = OpCost(muls=10, adds=8, other_flops=2, bytes_in=100, bytes_out=50)
        assert c.mac_flops == 18
        assert c.macs == 10
        assert c.flops == 20
        assert c.bytes_total == 150

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            OpCost(muls=-1)

    def test_rejects_zero_parallelism(self):
        with pytest.raises(ValueError):
            OpCost(parallelism=0)


class TestCostConstructors:
    def test_conv2d_cost_macs(self):
        # 1x8x8x16 output, 3x3x4 filter taps
        c = conv2d_cost(1, 8, 8, 4, 16, (3, 3), 1000, 500, 2000)
        assert c.muls == 8 * 8 * 16 * 9 * 4
        assert c.adds == c.muls
        assert c.parallelism == 3 * 3 * 4  # one pair per filter tap
        assert c.bytes_in == 1500
        assert c.bytes_out == 2000

    def test_conv2d_index_overhead(self):
        c = conv2d_cost(1, 8, 8, 4, 16, (3, 3), 0, 0, 0, index_overhead=1.0)
        assert c.other_flops == 8 * 8 * 16

    def test_matmul_cost(self):
        c = matmul_cost(32, 100, 50)
        assert c.muls == 32 * 100 * 50
        assert c.parallelism == 100  # the reduction dimension
        assert c.bytes_in == (32 * 100 + 100 * 50) * 4
        assert c.bytes_out == 32 * 50 * 4

    def test_elementwise_mac_vs_other(self):
        mac = elementwise_cost(1000, mac=True)
        other = elementwise_cost(1000, mac=False)
        assert mac.mac_flops == 1000 and mac.other_flops == 0
        assert other.other_flops == 1000 and other.mac_flops == 0

    def test_reduction_cost(self):
        c = reduction_cost(10_000, 64)
        assert c.adds == 10_000
        assert c.parallelism == 64  # one lane per output element

    def test_pool_cost_counts_window_comparisons(self):
        c = pool_cost(2, 4, 4, 8, (2, 2), 1000, 500)
        assert c.other_flops == 2 * 4 * 4 * 8 * 4
        assert c.parallelism == 8

    def test_data_movement_cost_has_no_flops(self):
        c = data_movement_cost(4096)
        assert c.flops == 0
        assert c.bytes_total == 8192

    def test_adam_cost_touches_parameter_state(self):
        n = 1000
        c = adam_cost(n)
        assert c.muls == 4 * n and c.adds == 3 * n and c.other_flops == 2 * n
        # parameter + gradient + two moments in, parameter + moments out
        assert c.bytes_in == 4 * n * 4
        assert c.bytes_out == 3 * n * 4


class TestOpInstance:
    def test_traffic_applies_type_factor(self):
        op = Op(
            name="x/Conv2DBackpropFilter",
            op_type="Conv2DBackpropFilter",
            cost=OpCost(muls=10, adds=10, bytes_in=1000, bytes_out=1000),
        )
        info = op.info
        assert op.traffic_bytes == int(2000 * info.traffic_factor)
        assert op.host_traffic_bytes == int(2000 * info.host_traffic_factor)
        assert op.host_traffic_bytes > op.traffic_bytes  # TF kernels thrash

    def test_staging_bytes_for_hybrid(self):
        op = Op(
            name="x/Conv2DBackpropInput",
            op_type="Conv2DBackpropInput",
            cost=OpCost(muls=10, adds=10, bytes_in=1000, bytes_out=0),
        )
        assert op.staging_bytes == int(1000 * op.info.stages_bytes_factor)

    def test_invalid_type_rejected_at_construction(self):
        with pytest.raises(UnknownOpError):
            Op(name="bad", op_type="Bogus")
