"""Integration tests: the paper's headline relative results (DESIGN.md s4).

These are the reproduction's acceptance criteria.  Bands are the paper's
published ranges widened by a tolerance factor where our calibrated
substrate deviates (every deviation is documented in EXPERIMENTS.md).
"""

import pytest

from repro.experiments.common import run_model_on

FAST_MODELS = ("vgg-19", "alexnet", "dcgan")


@pytest.fixture(scope="module")
def runs():
    out = {}
    for model in FAST_MODELS:
        out[model] = {
            cfg: run_model_on(model, cfg)
            for cfg in ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim",
                        "neurocube")
        }
    return out


class TestFigure8TimeBands:
    def test_pim_configs_all_beat_cpu(self, runs):
        """Paper: PIM-based designs improve over CPU by 19% to ~28x."""
        for model in FAST_MODELS:
            cpu = runs[model]["cpu"].step_time_s
            for cfg in ("prog-pim", "fixed-pim", "hetero-pim"):
                speedup = cpu / runs[model][cfg].step_time_s
                assert speedup > 1.19, f"{model}/{cfg}: {speedup:.2f}"
                assert speedup < 40, f"{model}/{cfg}: {speedup:.2f}"

    def test_hetero_vs_prog_pim(self, runs):
        """Paper: 2.5x-23x over Progr PIM."""
        for model in FAST_MODELS:
            ratio = (
                runs[model]["prog-pim"].step_time_s
                / runs[model]["hetero-pim"].step_time_s
            )
            assert 2.4 < ratio < 23, f"{model}: {ratio:.2f}"

    def test_hetero_vs_fixed_pim(self, runs):
        """Paper: 1.4x-5.7x over Fixed PIM."""
        for model in FAST_MODELS:
            ratio = (
                runs[model]["fixed-pim"].step_time_s
                / runs[model]["hetero-pim"].step_time_s
            )
            assert 1.3 < ratio < 5.7, f"{model}: {ratio:.2f}"

    def test_hetero_close_to_gpu_on_vgg(self, runs):
        """Paper: within ~10% of the GPU for most models."""
        ratio = (
            runs["vgg-19"]["gpu"].step_time_s
            / runs["vgg-19"]["hetero-pim"].step_time_s
        )
        assert 0.85 < ratio < 1.25

    def test_gpu_beats_hetero_on_dcgan(self, runs):
        """Paper: DCGAN (small model) is faster on the GPU."""
        assert (
            runs["dcgan"]["gpu"].step_time_s
            < runs["dcgan"]["hetero-pim"].step_time_s
        )

    def test_hetero_beats_gpu_on_resnet(self):
        """Paper: ResNet-50 (large working set) is faster on Hetero PIM."""
        gpu = run_model_on("resnet-50", "gpu")
        hetero = run_model_on("resnet-50", "hetero-pim")
        assert hetero.step_time_s < gpu.step_time_s

    def test_hetero_has_lowest_sync_and_dm_overhead(self, runs):
        """Paper: Hetero PIM has the lowest sync + data-movement overhead."""
        for model in FAST_MODELS:
            h = runs[model]["hetero-pim"].step_breakdown
            c = runs[model]["cpu"].step_breakdown
            overhead_h = h.sync_s + h.data_movement_s
            overhead_c = c.sync_s + c.data_movement_s
            assert overhead_h < overhead_c


class TestFigure9EnergyBands:
    def test_hetero_energy_vs_cpu(self, runs):
        """Paper: 3x-24x less dynamic energy than CPU."""
        for model in FAST_MODELS:
            ratio = (
                runs[model]["cpu"].step_dynamic_energy_j
                / runs[model]["hetero-pim"].step_dynamic_energy_j
            )
            assert 3 < ratio < 30, f"{model}: {ratio:.1f}"

    def test_hetero_energy_vs_gpu(self, runs):
        """Paper: 1.3x-5x less dynamic energy than GPU."""
        for model in FAST_MODELS:
            ratio = (
                runs[model]["gpu"].step_dynamic_energy_j
                / runs[model]["hetero-pim"].step_dynamic_energy_j
            )
            assert 1.3 < ratio < 6, f"{model}: {ratio:.1f}"

    def test_prog_pim_draws_most_dynamic_energy_on_vgg(self, runs):
        """Paper: Progr PIM has the highest dynamic energy (slow + hungry)."""
        vgg = runs["vgg-19"]
        prog_e = vgg["prog-pim"].step_dynamic_energy_j
        for cfg in ("gpu", "fixed-pim", "hetero-pim"):
            assert prog_e > vgg[cfg].step_dynamic_energy_j
        assert prog_e > 0.5 * vgg["cpu"].step_dynamic_energy_j


class TestFigure10Neurocube:
    def test_hetero_beats_neurocube_3x(self, runs):
        """Paper: >= 3x higher performance and energy efficiency."""
        for model in FAST_MODELS:
            h = runs[model]["hetero-pim"]
            n = runs[model]["neurocube"]
            assert n.step_time_s / h.step_time_s > 2.5, model
            assert (
                n.step_dynamic_energy_j / h.step_dynamic_energy_j > 2.0
            ), model

    def test_gap_widens_for_compute_intensive_models(self, runs):
        """Paper: larger improvement on VGG-19 than on DCGAN-class models."""
        vgg_gap = (
            runs["vgg-19"]["neurocube"].step_time_s
            / runs["vgg-19"]["hetero-pim"].step_time_s
        )
        assert vgg_gap > 3.0


class TestFigure15Utilization:
    def test_hetero_utilization_is_high(self, runs):
        """Paper: close to 100% with RC + OP (we accept >= 70% on the
        compute-heavy models)."""
        for model in ("vgg-19", "alexnet"):
            util = runs[model]["hetero-pim"].fixed_pim_utilization
            assert util > 0.70, f"{model}: {util:.2f}"
