"""Extended-OpenCL programming model: platform, kernels, memory, sync."""

import pytest

from repro.config import default_config
from repro.errors import (
    KernelBuildError,
    ProgrammingModelError,
    SchedulingError,
)
from repro.nn.ops import Op, OpCost
from repro.nn.tensor import TensorSpec
from repro.pimcl import (
    Barrier,
    BinaryKind,
    CommandQueue,
    CompletionFlags,
    DeviceType,
    EventStatus,
    GlobalLock,
    PhaseKind,
    SharedGlobalMemory,
    build_platform,
    generate_binaries,
)


def conv_op(name="l1/Conv2D", op_type="Conv2D", **cost):
    defaults = dict(muls=1000, adds=1000, bytes_in=4000, bytes_out=4000,
                    parallelism=27)
    defaults.update(cost)
    return Op(name=name, op_type=op_type, cost=OpCost(**defaults))


class TestPlatform:
    def test_mapping_follows_paper(self):
        platform = build_platform(default_config())
        fixed = platform.fixed_pim_device
        # all fixed-function PIMs form ONE compute device; PIMs in a bank
        # form a compute unit (Figure 5b)
        assert fixed.device_type is DeviceType.FIXED_PIM
        assert fixed.n_pes == 444
        assert len(fixed.compute_units) == 32
        # each programmable PIM is its own compute device with cores as PEs
        progs = platform.prog_pim_devices
        assert len(progs) == 1
        assert progs[0].n_pes == 4

    def test_host_device(self):
        platform = build_platform(default_config())
        assert platform.host.device_type is DeviceType.HOST_CPU
        assert platform.host.n_pes == 8

    def test_unknown_device_rejected(self):
        platform = build_platform(default_config())
        with pytest.raises(ProgrammingModelError):
            platform.device("tpu")

    def test_prog_pim_scaling(self):
        cfg = default_config().with_prog_pims(4)
        platform = build_platform(cfg)
        assert len(platform.prog_pim_devices) == 4
        assert platform.fixed_pim_device.n_pes == cfg.fixed_pim.n_units


class TestBinaryGeneration:
    def test_fixed_op_gets_binaries_1_and_2(self):
        kernel = generate_binaries(conv_op())
        assert kernel.has_binary(BinaryKind.CPU)
        assert kernel.has_binary(BinaryKind.FIXED_FULL)
        assert not kernel.has_binary(BinaryKind.PROG)

    def test_hybrid_op_gets_binaries_3_and_4(self):
        op = conv_op("l1/Conv2DBackpropFilter", "Conv2DBackpropFilter")
        kernel = generate_binaries(op)
        assert kernel.has_binary(BinaryKind.FIXED_SUB)
        assert kernel.has_binary(BinaryKind.PROG)
        plan = kernel.binary(BinaryKind.PROG).plan
        kinds = [p.kind for p in plan]
        # Figure 6: complex and MAC phases interleave, complex at both ends
        assert kinds[0] is PhaseKind.COMPLEX
        assert kinds[-1] is PhaseKind.COMPLEX
        assert plan.n_mac_phases == op.info.mac_chunks

    def test_hybrid_plan_conserves_work(self):
        op = conv_op("l1/Conv2DBackpropInput", "Conv2DBackpropInput",
                     other_flops=500)
        plan = generate_binaries(op).binary(BinaryKind.PROG).plan
        assert plan.total_macs == op.cost.macs
        assert plan.total_other_flops == op.cost.other_flops

    def test_prog_op_gets_binary_4_only(self):
        op = conv_op("p1/Relu", "Relu", muls=0, adds=0, other_flops=100)
        kernel = generate_binaries(op)
        assert kernel.has_binary(BinaryKind.PROG)
        assert not kernel.has_binary(BinaryKind.FIXED_FULL)

    def test_host_op_gets_cpu_binary_only(self):
        op = Op(name="r/Reshape", op_type="Reshape")
        kernel = generate_binaries(op)
        assert set(kernel.binaries) == {BinaryKind.CPU}

    def test_missing_binary_raises(self):
        kernel = generate_binaries(Op(name="r/Reshape", op_type="Reshape"))
        with pytest.raises(KernelBuildError):
            kernel.binary(BinaryKind.FIXED_FULL)

    def test_streaming_fixed_op(self):
        op = Op(name="s/Slice", op_type="Slice",
                cost=OpCost(bytes_in=1000, bytes_out=1000))
        plan = generate_binaries(op).binary(BinaryKind.FIXED_FULL).plan
        assert len(plan) == 1
        assert plan.phases[0].macs == 0
        assert plan.phases[0].bytes_moved > 0


class TestSharedMemory:
    def test_single_global_memory_no_copies(self):
        mem = SharedGlobalMemory(n_banks=32)
        alloc = mem.allocate(TensorSpec("x", (100,)))
        assert 0 <= alloc.home_bank < 32
        assert mem.home_bank("x") == alloc.home_bank

    def test_deterministic_banking(self):
        a = SharedGlobalMemory(n_banks=32)
        b = SharedGlobalMemory(n_banks=32)
        a.allocate(TensorSpec("x", (100,)))
        b.allocate(TensorSpec("x", (100,)))
        assert a.home_bank("x") == b.home_bank("x")

    def test_relaxed_consistency_epochs(self):
        mem = SharedGlobalMemory(n_banks=4)
        mem.allocate(TensorSpec("t", (10,)))
        mem.begin_write("t")
        assert not mem.is_visible("t")
        with pytest.raises(ProgrammingModelError):
            mem.check_readable("t")
        mem.publish("t")  # kernel-call boundary
        mem.check_readable("t")

    def test_double_allocate_rejected(self):
        mem = SharedGlobalMemory(n_banks=4)
        mem.allocate(TensorSpec("t", (10,)))
        with pytest.raises(ProgrammingModelError):
            mem.allocate(TensorSpec("t", (10,)))

    def test_unknown_tensor_rejected(self):
        with pytest.raises(ProgrammingModelError):
            SharedGlobalMemory(n_banks=4).home_bank("ghost")


class TestSyncPrimitives:
    def test_global_lock(self):
        lock = GlobalLock("l")
        assert lock.acquire("cpu")
        assert not lock.acquire("pim")
        assert lock.acquire("cpu")  # re-entrant for the holder
        lock.release("cpu")
        assert lock.acquire("pim")

    def test_lock_release_by_non_holder_rejected(self):
        lock = GlobalLock("l")
        lock.acquire("cpu")
        with pytest.raises(SchedulingError):
            lock.release("pim")

    def test_barrier_releases_when_all_arrive(self):
        barrier = Barrier("b", participants={"cpu", "prog", "fixed"})
        assert not barrier.arrive("cpu")
        assert not barrier.arrive("prog")
        assert barrier.arrive("fixed")
        assert barrier.generation == 1
        assert barrier.waiting == ["cpu", "fixed", "prog"]

    def test_barrier_rejects_strangers(self):
        barrier = Barrier("b", participants={"cpu"})
        with pytest.raises(SchedulingError):
            barrier.arrive("gpu")

    def test_completion_flags_drain(self):
        flags = CompletionFlags()
        flags.mark_done("op1")
        flags.mark_done("op2")
        assert flags.is_done("op1")
        assert flags.drain() == ["op1", "op2"]
        assert not flags.is_done("op1")


class TestCommandQueue:
    def test_enqueue_pop_lifecycle(self):
        q = CommandQueue("fixed_pim")
        kernel = generate_binaries(conv_op())
        event = q.enqueue(kernel, BinaryKind.FIXED_FULL, now=1.0)
        assert event.status is EventStatus.QUEUED
        cmd = q.pop()
        assert cmd.event is event
        event.mark_running(2.0)
        event.mark_complete(3.0)
        assert event.status is EventStatus.COMPLETE
        assert event.queue_delay_s == pytest.approx(1.0)

    def test_enqueue_validates_binary(self):
        q = CommandQueue("prog_pim_0")
        kernel = generate_binaries(conv_op())  # FIXED op: no PROG binary
        with pytest.raises(KernelBuildError):
            q.enqueue(kernel, BinaryKind.PROG)

    def test_invalid_event_transitions(self):
        q = CommandQueue("fixed_pim")
        event = q.enqueue(generate_binaries(conv_op()), BinaryKind.FIXED_FULL)
        with pytest.raises(ProgrammingModelError):
            event.mark_complete(1.0)

    def test_empty_pop(self):
        assert CommandQueue("d").pop() is None
