"""Low-level PIM APIs (paper Table III)."""

import pytest

from repro.errors import ProgrammingModelError, SchedulingError
from repro.hardware.fixed_pim import FixedPIMPool
from repro.hardware.prog_pim import ProgPIMCluster
from repro.nn.ops import Op, OpCost
from repro.nn.tensor import TensorSpec
from repro.pimcl import PimApi, PimSystemState, SharedGlobalMemory


@pytest.fixture()
def api():
    memory = SharedGlobalMemory(n_banks=8)
    memory.allocate(TensorSpec("in", (10,)))
    memory.allocate(TensorSpec("out", (10,)))
    state = PimSystemState(
        fixed_pool=FixedPIMPool(16),
        prog_cluster=ProgPIMCluster(1),
        memory=memory,
    )
    return PimApi(state)


def make_op(name="x/MatMul"):
    return Op(
        name=name, op_type="MatMul",
        inputs=("in",), outputs=("out",),
        cost=OpCost(muls=10, adds=10, parallelism=8),
    )


class TestOffload:
    def test_offload_to_fixed(self, api):
        granted = api.pim_offload(make_op(), "fixed_pim", units=8)
        assert granted == 8
        assert api.pim_free_capacity("fixed_pim") == 8

    def test_offload_to_prog(self, api):
        api.pim_offload(make_op(), "prog_pim")
        assert api.pim_is_busy("prog_pim")

    def test_offload_to_busy_prog_raises(self, api):
        api.pim_offload(make_op("a/MatMul"), "prog_pim")
        with pytest.raises(SchedulingError):
            api.pim_offload(make_op("b/MatMul"), "prog_pim")

    def test_offload_unknown_device(self, api):
        with pytest.raises(ProgrammingModelError):
            api.pim_offload(make_op(), "npu")


class TestStatusAndCompletion:
    def test_busy_tracking(self, api):
        assert not api.pim_is_busy("fixed_pim")
        api.pim_offload(make_op(), "fixed_pim", units=16)
        assert api.pim_is_busy("fixed_pim")

    def test_completion_releases_resources(self, api):
        op = make_op()
        api.pim_offload(op, "fixed_pim", units=8)
        assert not api.pim_query_complete(op.name)
        api.pim_mark_complete(op.name, now=1.0)
        assert api.pim_query_complete(op.name)
        assert api.pim_free_capacity("fixed_pim") == 16

    def test_unknown_device_busy_query(self, api):
        with pytest.raises(ProgrammingModelError):
            api.pim_is_busy("npu")


class TestLocate:
    def test_locate_returns_location_and_banks(self, api):
        op = make_op()
        api.pim_offload(op, "fixed_pim", units=4)
        location, banks = api.pim_locate(op)
        assert location == "fixed_pim"
        assert banks  # tensors are stack-resident
        for bank in banks:
            assert 0 <= bank < 8

    def test_locate_unplaced_op(self, api):
        location, banks = api.pim_locate(make_op())
        assert location is None
