"""Energy model: device powers, memory-access energy, frequency effects."""

import pytest

from repro.config import default_config
from repro.hardware.power import DeviceUsage, EnergyModel


class TestEnergyModel:
    def test_zero_usage_zero_dynamic_device_energy(self):
        model = EnergyModel(default_config())
        e = model.energy(DeviceUsage(), makespan_s=0.0)
        assert e.dynamic_j == 0.0
        assert e.static_j == 0.0

    def test_cpu_busy_time_dominates_cpu_energy(self):
        model = EnergyModel(default_config())
        e = model.energy(DeviceUsage(cpu_busy_s=10.0), makespan_s=10.0)
        assert e.by_device["cpu"] == pytest.approx(
            10.0 * default_config().cpu.dynamic_power_w
        )

    def test_host_runtime_power_when_cpu_idle(self):
        model = EnergyModel(default_config())
        idle = model.energy(DeviceUsage(cpu_busy_s=0.0), makespan_s=10.0)
        busy = model.energy(DeviceUsage(cpu_busy_s=10.0), makespan_s=10.0)
        assert idle.by_device["host_runtime"] > 0
        assert busy.by_device["host_runtime"] == 0.0

    def test_external_bytes_cost_more_than_internal(self):
        cfg = default_config()
        model = EnergyModel(cfg)
        ext = model.energy(DeviceUsage(external_bytes=1e9), makespan_s=1.0)
        internal = model.energy(DeviceUsage(internal_bytes=1e9), makespan_s=1.0)
        # compare pure per-byte costs (internal runs add stack-active power)
        assert (
            cfg.stack.external_pj_per_byte > cfg.stack.internal_pj_per_byte
        )
        assert ext.memory_j > internal.memory_j

    def test_stack_active_power_only_with_internal_traffic(self):
        model = EnergyModel(default_config())
        with_pim = model.energy(DeviceUsage(internal_bytes=1), makespan_s=2.0)
        without = model.energy(DeviceUsage(external_bytes=1), makespan_s=2.0)
        assert "stack_active" in with_pim.by_device
        assert "stack_active" not in without.by_device

    def test_gpu_static_power_included_only_when_present(self):
        cfg = default_config()
        with_gpu = EnergyModel(cfg, gpu_present=True).energy(
            DeviceUsage(), makespan_s=1.0
        )
        without = EnergyModel(cfg, gpu_present=False).energy(
            DeviceUsage(), makespan_s=1.0
        )
        assert with_gpu.static_j - without.static_j == pytest.approx(
            cfg.gpu.static_power_w
        )

    def test_pim_dynamic_power_scales_with_frequency(self):
        usage = DeviceUsage(fixed_unit_busy_s=100.0, prog_busy_s=1.0)
        base = EnergyModel(default_config()).energy(usage, makespan_s=1.0)
        fast = EnergyModel(default_config().with_frequency_scale(4.0)).energy(
            usage, makespan_s=1.0
        )
        assert fast.by_device["fixed_pim"] == pytest.approx(
            4 * base.by_device["fixed_pim"]
        )
        assert fast.by_device["prog_pim"] == pytest.approx(
            4 * base.by_device["prog_pim"]
        )

    def test_edp_and_average_power(self):
        model = EnergyModel(default_config())
        e = model.energy(DeviceUsage(cpu_busy_s=1.0), makespan_s=2.0)
        assert e.edp() == pytest.approx(e.total_j * 2.0)
        assert e.average_power_w == pytest.approx(e.total_j / 2.0)

    def test_negative_makespan_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(default_config()).energy(DeviceUsage(), makespan_s=-1.0)

    def test_usage_merge(self):
        a = DeviceUsage(cpu_busy_s=1.0, internal_bytes=10)
        b = DeviceUsage(cpu_busy_s=2.0, gpu_bytes=5)
        merged = a.merged_with(b)
        assert merged.cpu_busy_s == 3.0
        assert merged.internal_bytes == 10
        assert merged.gpu_bytes == 5

    def test_dynamic_total_excludes_static(self):
        model = EnergyModel(default_config())
        e = model.energy(DeviceUsage(cpu_busy_s=1.0), makespan_s=5.0)
        assert e.dynamic_total_j == pytest.approx(e.dynamic_j + e.memory_j)
        assert e.total_j == pytest.approx(e.dynamic_total_j + e.static_j)
