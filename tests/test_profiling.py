"""Profiling framework: Table I characterization and Figure 2 classes."""

import pytest

from repro.errors import UnclassifiedOpError
from repro.nn.models import build_model
from repro.profiling import (
    CACHE_LINE_BYTES,
    ClassificationThresholds,
    OpCategory,
    WorkloadProfiler,
    category_members,
    classify_workload,
    sample_counters,
    unclassified_ops,
)
from repro.hardware.cpu import CpuModel
from repro.config import default_config


@pytest.fixture(scope="module")
def profiles():
    profiler = WorkloadProfiler()
    return {m: profiler.profile(build_model(m)) for m in ("vgg-19", "alexnet")}


class TestWorkloadProfile:
    def test_shares_sum_to_one(self, profiles):
        for p in profiles.values():
            assert sum(t.time_share for t in p.by_type) == pytest.approx(1.0)
            assert sum(t.memory_share for t in p.by_type) == pytest.approx(1.0)

    def test_per_op_totals_match(self, profiles):
        p = profiles["vgg-19"]
        assert p.step_time_s == pytest.approx(sum(o.time_s for o in p.per_op))
        assert p.total_memory_bytes == sum(o.memory_bytes for o in p.per_op)

    def test_vgg_top5_ci_matches_table1_set(self, profiles):
        top = {t.op_type for t in profiles["vgg-19"].top_compute(5)}
        # the paper's five: CBF, CBI, BiasAddGrad, Conv2D, MaxPoolGrad
        assert top == {
            "Conv2DBackpropFilter", "Conv2DBackpropInput", "BiasAddGrad",
            "Conv2D", "MaxPoolGrad",
        }

    def test_vgg_cbf_dominates_time(self, profiles):
        top = profiles["vgg-19"].top_compute(1)[0]
        assert top.op_type == "Conv2DBackpropFilter"
        assert 0.25 < top.time_share < 0.55  # paper: 40.15%

    def test_vgg_top_mi_matches_table1_head(self, profiles):
        top3 = [t.op_type for t in profiles["vgg-19"].top_memory(3)]
        assert set(top3) == {
            "Conv2DBackpropFilter", "BiasAddGrad", "Conv2DBackpropInput"
        }

    def test_top5_dominance(self, profiles):
        """Top-5 op types hold the overwhelming share (paper: >95% time,
        >98% of memory accesses)."""
        for p in profiles.values():
            assert sum(t.time_share for t in p.top_compute(5)) > 0.90
            assert sum(t.memory_share for t in p.top_memory(5)) > 0.85

    def test_alexnet_biasaddgrad_memory_heavy(self, profiles):
        # paper Table I: BiasAddGrad tops AlexNet's MI list (44.64%)
        top2 = {t.op_type for t in profiles["alexnet"].top_memory(2)}
        assert "BiasAddGrad" in top2

    def test_coverage_helper(self, profiles):
        p = profiles["vgg-19"]
        t_cov, m_cov = p.coverage(
            ["Conv2DBackpropFilter", "Conv2DBackpropInput"]
        )
        assert 0.5 < t_cov < 1.0
        assert 0.3 < m_cov < 1.0

    def test_type_profile_lookup(self, profiles):
        p = profiles["vgg-19"]
        assert p.type_profile("Conv2D").invocations == 16
        assert p.type_profile("NotAType") is None


class TestCounters:
    def test_counter_sample_consistency(self):
        g = build_model("alexnet")
        conv = next(op for op in g.ops if op.op_type == "Conv2D")
        cpu = CpuModel(default_config().cpu)
        counters = sample_counters(conv, cpu.op_timing(conv), default_config().cpu)
        assert counters.cycles > 0
        assert counters.instructions > conv.cost.mac_flops
        assert counters.main_memory_bytes == pytest.approx(
            conv.host_traffic_bytes, abs=CACHE_LINE_BYTES
        )


class TestClassification:
    def _classify(self, model):
        g = build_model(model)
        profile = WorkloadProfiler().profile(g)
        flops = {}
        for op in g.ops:
            flops[op.op_type] = flops.get(op.op_type, 0) + op.cost.flops
        return classify_workload(profile, flops)

    def test_conv_backprops_are_class2(self):
        classes = self._classify("vgg-19")
        assert (
            classes["Conv2DBackpropFilter"]
            is OpCategory.COMPUTE_AND_MEMORY_INTENSIVE
        )

    def test_bookkeeping_is_negligible(self):
        classes = self._classify("vgg-19")
        assert classes["Reshape"] is OpCategory.NEGLIGIBLE

    def test_category_members_sorted(self):
        classes = self._classify("alexnet")
        members = category_members(
            classes, OpCategory.COMPUTE_AND_MEMORY_INTENSIVE
        )
        assert members == sorted(members)
        assert "Conv2DBackpropFilter" in members

    def test_thresholds_are_tunable(self):
        g = build_model("alexnet")
        profile = WorkloadProfiler().profile(g)
        flops = {op.op_type: op.cost.flops for op in g.ops}
        strict = classify_workload(
            profile, flops,
            ClassificationThresholds(time_share_threshold=0.99,
                                     memory_share_threshold=0.99),
        )
        assert all(c is OpCategory.NEGLIGIBLE for c in strict.values())


class TestUnknownOps:
    """Regression: op types with no flop entry must never silently land
    in the zero-flop buckets."""

    def _profile_and_flops(self, model="alexnet"):
        g = build_model(model)
        profile = WorkloadProfiler().profile(g)
        flops = {}
        for op in g.ops:
            flops[op.op_type] = flops.get(op.op_type, 0) + op.cost.flops
        return profile, flops

    def test_missing_entries_classify_as_cpu_fallback(self):
        profile, flops = self._profile_and_flops()
        del flops["Conv2DBackpropFilter"]
        del flops["Relu"]
        classes = classify_workload(profile, flops)
        assert classes["Conv2DBackpropFilter"] is OpCategory.CPU_FALLBACK
        assert classes["Relu"] is OpCategory.CPU_FALLBACK
        assert unclassified_ops(classes) == 2
        assert category_members(classes, OpCategory.CPU_FALLBACK) == [
            "Conv2DBackpropFilter", "Relu",
        ]

    def test_strict_mode_raises_structured_error(self):
        profile, flops = self._profile_and_flops()
        del flops["Conv2DBackpropFilter"]
        del flops["Relu"]
        with pytest.raises(UnclassifiedOpError) as excinfo:
            classify_workload(profile, flops, strict=True)
        assert excinfo.value.op_types == ("Conv2DBackpropFilter", "Relu")
        assert "Conv2DBackpropFilter" in str(excinfo.value)

    def test_explicit_zero_flops_still_classifies_normally(self):
        profile, flops = self._profile_and_flops()
        flops["Reshape"] = 0
        classes = classify_workload(profile, flops, strict=True)
        assert classes["Reshape"] is not OpCategory.CPU_FALLBACK
        assert unclassified_ops(classes) == 0

    def test_complete_tables_have_no_fallback(self):
        for model in ("alexnet", "transformer", "gnn", "embedrec"):
            profile, flops = self._profile_and_flops(model)
            classes = classify_workload(profile, flops, strict=True)
            assert unclassified_ops(classes) == 0
