"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StackConfig
from repro.hardware.fixed_pim import FixedPIMPool
from repro.hardware.hmc import StackGeometry
from repro.hardware.placement import place_fixed_pims, validate_thermal
from repro.nn.ops import OpCost, conv2d_cost, elementwise_cost, matmul_cost
from repro.pimcl.codegen import _split_mac, generate_binaries
from repro.pimcl.kernel import BinaryKind, PhaseKind
from repro.nn.ops import Op
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------
@given(n_units=st.integers(min_value=0, max_value=5000))
@settings(max_examples=60)
def test_placement_always_sums_exactly(n_units):
    geo = StackGeometry(StackConfig())
    placement = place_fixed_pims(geo, n_units)
    assert placement.total_units == n_units
    assert all(u >= 0 for u in placement.units_per_bank)
    assert len(placement.units_per_bank) == 32


@given(n_units=st.integers(min_value=32, max_value=2000))
@settings(max_examples=40)
def test_placement_respects_thermal_policy(n_units):
    geo = StackGeometry(StackConfig())
    placement = place_fixed_pims(geo, n_units)
    validate_thermal(placement, geo)  # never raises


# ---------------------------------------------------------------------------
# work splitting (binary generation)
# ---------------------------------------------------------------------------
@given(
    total=st.integers(min_value=0, max_value=10**12),
    chunks=st.integers(min_value=1, max_value=64),
)
def test_split_mac_conserves_and_balances(total, chunks):
    parts = _split_mac(total, chunks)
    assert sum(parts) == total
    assert len(parts) == chunks
    assert max(parts) - min(parts) <= 1


@given(
    muls=st.integers(min_value=1, max_value=10**9),
    other=st.integers(min_value=0, max_value=10**6),
    nbytes=st.integers(min_value=0, max_value=10**9),
)
@settings(max_examples=60)
def test_hybrid_plan_conserves_work(muls, other, nbytes):
    op = Op(
        name="x/Conv2DBackpropFilter",
        op_type="Conv2DBackpropFilter",
        cost=OpCost(muls=muls, adds=muls, other_flops=other,
                    bytes_in=nbytes, bytes_out=0),
    )
    plan = generate_binaries(op).binary(BinaryKind.PROG).plan
    assert plan.total_macs == op.cost.macs
    assert plan.total_other_flops == other
    # phases alternate with COMPLEX at both ends
    kinds = [p.kind for p in plan]
    assert kinds[0] is PhaseKind.COMPLEX and kinds[-1] is PhaseKind.COMPLEX
    # total bytes moved across phases equals the op's traffic estimate
    assert sum(p.bytes_moved for p in plan) <= op.traffic_bytes + len(plan)


# ---------------------------------------------------------------------------
# cost constructors
# ---------------------------------------------------------------------------
@given(
    m=st.integers(min_value=1, max_value=512),
    k=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
)
def test_matmul_cost_is_symmetric_in_flops(m, k, n):
    a = matmul_cost(m, k, n)
    b = matmul_cost(n, k, m)
    assert a.muls == b.muls == m * k * n


@given(
    batch=st.integers(min_value=1, max_value=16),
    hw=st.integers(min_value=1, max_value=32),
    c_in=st.integers(min_value=1, max_value=64),
    c_out=st.integers(min_value=1, max_value=64),
    kernel=st.sampled_from([(1, 1), (3, 3), (5, 5)]),
)
@settings(max_examples=60)
def test_conv_cost_positive_and_consistent(batch, hw, c_in, c_out, kernel):
    c = conv2d_cost(batch, hw, hw, c_in, c_out, kernel, 0, 0, 0)
    assert c.muls == c.adds > 0
    assert c.parallelism == kernel[0] * kernel[1] * c_in


@given(numel=st.integers(min_value=1, max_value=10**8))
def test_elementwise_cost_work_matches_elements(numel):
    c = elementwise_cost(numel, mac=True)
    assert c.mac_flops == numel
    c2 = elementwise_cost(numel, mac=False, flops_per_element=2.0)
    assert c2.other_flops == 2 * numel


# ---------------------------------------------------------------------------
# fixed pool busy-integral conservation
# ---------------------------------------------------------------------------
@given(
    allocations=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=40),  # units
            st.floats(min_value=0.01, max_value=5.0),  # duration
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=50)
def test_pool_busy_integral_equals_sum_of_holdings(allocations):
    pool = FixedPIMPool(40)
    now = 0.0
    expected = 0.0
    for i, (units, duration) in enumerate(allocations):
        granted = pool.allocate(f"k{i}", units, now)
        assert granted == min(units, 40)
        end = now + duration
        expected += granted * duration
        pool.release(f"k{i}", end)
        now = end
    assert math.isclose(pool.busy_unit_seconds(now), expected, rel_tol=1e-9)


# ---------------------------------------------------------------------------
# event engine ordering
# ---------------------------------------------------------------------------
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
    )
)
@settings(max_examples=50)
def test_engine_processes_events_in_nondecreasing_time(delays):
    engine = Engine()
    fired = []
    for d in delays:
        engine.at(d, lambda d=d: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
