"""Property-based tests over randomly generated training graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graph import merge_graphs
from repro.nn.layers import GraphBuilder
from repro.sim.tracegen import generate_trace


@st.composite
def random_mlp(draw):
    """A random MLP training graph (dense/dropout/relu stack)."""
    batch = draw(st.integers(min_value=1, max_value=8))
    in_dim = draw(st.integers(min_value=1, max_value=32))
    n_layers = draw(st.integers(min_value=1, max_value=5))
    widths = draw(
        st.lists(
            st.integers(min_value=1, max_value=64),
            min_size=n_layers,
            max_size=n_layers,
        )
    )
    classes = draw(st.integers(min_value=2, max_value=16))
    with_dropout = draw(st.booleans())

    b = GraphBuilder("mlp", batch_size=batch)
    x = b.input((batch, in_dim))
    for i, width in enumerate(widths):
        x = b.dense(x, width, name=f"fc{i}")
        if with_dropout:
            x = b.dropout(x, name=f"drop{i}")
    x = b.dense(x, classes, activation=None, name="logits")
    b.softmax_loss(x, classes)
    return b.finish()


@given(graph=random_mlp())
@settings(max_examples=30, deadline=None)
def test_random_graphs_are_acyclic_and_complete(graph):
    order = graph.topological_order()
    assert len(order) == graph.num_ops
    # every op's predecessors appear earlier in the topological order
    seen = set()
    for op in order:
        assert graph.predecessors(op.name) <= seen
        seen.add(op.name)


@given(graph=random_mlp())
@settings(max_examples=20, deadline=None)
def test_every_trainable_parameter_gets_one_update(graph):
    updates = graph.param_update_ops
    matmul_weights = [
        t for t in graph.tensors
        if t.endswith("/weights") or t.endswith("/bias")
    ]
    assert set(updates) == set(matmul_weights)
    # each update op reads the parameter it writes
    for param, op_name in updates.items():
        op = graph.op(op_name)
        assert param in op.inputs


@given(graph=random_mlp(), steps=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_trace_dependences_stay_within_one_step_back(graph, steps):
    tasks = generate_trace(graph, steps)
    for task in tasks:
        for dep in task.deps:
            dep_step = int(dep.split("/", 1)[0][1:])
            assert task.step - 1 <= dep_step <= task.step


@given(graph=random_mlp())
@settings(max_examples=15, deadline=None)
def test_merge_with_self_doubles_ops(graph):
    import copy

    other = copy.deepcopy(graph)
    other.name = graph.name + "-b"
    merged = merge_graphs("pair", [graph, other])
    assert merged.num_ops == 2 * graph.num_ops
    merged.validate()


@given(graph=random_mlp())
@settings(max_examples=15, deadline=None)
def test_total_cost_is_sum_over_ops(graph):
    total = graph.total_cost()
    assert total.mac_flops == sum(op.cost.mac_flops for op in graph.ops)
    assert total.bytes_total == sum(op.cost.bytes_total for op in graph.ops)


# ---------------------------------------------------------------------------
# numeric gradient checking over random feed-forward graphs
# ---------------------------------------------------------------------------
from repro.nn.numeric import check_gradients, random_feeds  # noqa: E402


@given(graph=random_mlp(), seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_random_mlp_gradients_verify(graph, seed):
    """Every randomly generated MLP's backward pass matches finite
    differences — the strongest invariant the substrate offers."""
    errors = check_gradients(
        graph, random_feeds(graph, seed=seed), samples_per_param=2,
        seed=seed,
    )
    assert max(errors.values()) < 1e-4
