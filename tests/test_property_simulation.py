"""Property-based tests on whole-simulation invariants.

Random MLP training graphs run through every policy; the properties below
must hold regardless of graph shape: conservation (all tasks complete),
breakdown accounting, energy positivity, and ordering between policies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_configuration
from repro.config import default_config
from repro.nn.layers import GraphBuilder
from repro.sim.simulation import Simulation


@st.composite
def small_training_graph(draw):
    batch = draw(st.integers(min_value=1, max_value=8))
    in_dim = draw(st.integers(min_value=2, max_value=48))
    widths = draw(
        st.lists(st.integers(min_value=2, max_value=96), min_size=1, max_size=4)
    )
    classes = draw(st.integers(min_value=2, max_value=12))
    use_conv = draw(st.booleans())

    b = GraphBuilder("prop-model", batch_size=batch)
    if use_conv:
        side = draw(st.sampled_from([4, 8, 12]))
        chans = draw(st.integers(min_value=1, max_value=8))
        x = b.input((batch, side, side, chans))
        x = b.conv2d(x, draw(st.integers(min_value=1, max_value=16)),
                     (3, 3), name="conv0")
        x = b.flatten(x)
    else:
        x = b.input((batch, in_dim))
    for i, w in enumerate(widths):
        x = b.dense(x, w, name=f"fc{i}")
    x = b.dense(x, classes, activation=None, name="logits")
    b.softmax_loss(x, classes)
    return b.finish()


@given(graph=small_training_graph(), steps=st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_every_policy_completes_and_accounts_time(graph, steps):
    for name in ("cpu", "gpu", "fixed-pim", "hetero-pim"):
        config, policy = build_configuration(name)
        result = Simulation(graph, policy, config=config, steps=steps).run()
        # conservation: simulation finished (would raise on deadlock)
        assert result.makespan_s > 0
        # the three buckets tile the makespan exactly
        assert abs(result.breakdown.total_s - result.makespan_s) < 1e-9
        # energy is positive and finite
        assert 0 < result.energy.total_j < float("inf")
        assert result.step_time_s <= result.makespan_s + 1e-12


@given(graph=small_training_graph())
@settings(max_examples=10, deadline=None)
def test_hetero_never_slower_than_cpu(graph):
    cfg_cpu, pol_cpu = build_configuration("cpu")
    cfg_het, pol_het = build_configuration("hetero-pim")
    cpu = Simulation(graph, pol_cpu, config=cfg_cpu).run()
    hetero = Simulation(graph, pol_het, config=cfg_het).run()
    # offloading may round-trip tiny graphs through launch overheads, but
    # must never lose by more than those overheads
    launch_budget = 0.01  # 10 ms of slack for launch-dominated tiny graphs
    assert hetero.step_time_s <= cpu.step_time_s + launch_budget


@given(graph=small_training_graph())
@settings(max_examples=10, deadline=None)
def test_pool_mac_accounting_is_conservative(graph):
    config, policy = build_configuration("hetero-pim")
    sim = Simulation(graph, policy, config)
    result = sim.run()
    total_macs = graph.total_cost().macs * result.steps
    # the pool never executes more MAC work than the trace contains
    assert result.usage.fixed_macs <= total_macs + 1


@given(
    graph=small_training_graph(),
    scale=st.sampled_from([1.0, 2.0, 4.0]),
)
@settings(max_examples=10, deadline=None)
def test_frequency_never_hurts(graph, scale):
    cfg1, pol1 = build_configuration("hetero-pim")
    base = Simulation(graph, pol1, config=cfg1).run()
    cfgN, polN = build_configuration(
        "hetero-pim", default_config().with_frequency_scale(scale)
    )
    scaled = Simulation(graph, polN, config=cfgN).run()
    # 10% slack: faster clocks shift dispatch timestamps, which can flip
    # greedy placement ties and occasionally pick a slightly worse
    # schedule for tiny graphs; the property is "no systematic harm",
    # not per-tie monotonicity.
    assert scaled.step_time_s <= base.step_time_s * 1.10 + 1e-6


@given(graph=small_training_graph())
@settings(max_examples=8, deadline=None)
def test_timeline_consistent_with_dependences(graph):
    config, policy = build_configuration("hetero-pim")
    sim = Simulation(graph, policy, config, record_timeline=True)
    sim.run()
    ends = {e.uid: e.end_s for e in sim.timeline.entries}
    starts = {e.uid: e.start_s for e in sim.timeline.entries}
    for task in sim._tasks.values():
        if task.spec is None:
            continue
        for dep in task.spec.deps:
            assert ends[dep] <= starts[task.uid] + 1e-9
