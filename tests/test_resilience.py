"""Crash-safe execution layer: supervised pool, journal, resume.

The worker functions live at module level so the pool can pickle them
(workers resolve them by qualified name; the fork start method guarantees
the test module is importable in the child).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import (
    CacheInconsistency,
    ExecutionError,
    PoisonJob,
)
from repro.experiments import runner
from repro.experiments.common import write_atomic
from repro.experiments.journal import (
    RunJournal,
    journal_dir,
    latest_run_id,
    list_runs,
)
from repro.sim import cache as sim_cache

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# picklable worker functions
# ---------------------------------------------------------------------------
def _dispatch(task):
    """One worker entry point for every failure mode under test."""
    kind = task[0]
    if kind == "ok":
        return task[1] * 10
    if kind == "poison":
        # deterministically kills its worker: must end up quarantined
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "crash-once":
        # crashes the worker on the first attempt only (the marker file
        # survives the kill): models an external `kill -9` mid-batch
        marker = Path(task[1])
        if not marker.exists():
            marker.write_text("attempt")
            os.kill(os.getpid(), signal.SIGKILL)
        return "recovered"
    if kind == "hang":
        time.sleep(600)
    if kind == "raise":
        raise ValueError("boom")
    raise AssertionError(f"unknown task kind {kind!r}")


@pytest.fixture(autouse=True)
def _fast_supervision(monkeypatch, tmp_path):
    """Keep retries fast and the cache/journal isolated per test."""
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(sim_cache, "_memory", {})


class TestSupervisedPool:
    def test_plain_batch_in_order(self):
        out = runner.supervise(
            _dispatch, [("ok", i) for i in range(5)], n_workers=2
        )
        assert out.results == [0, 10, 20, 30, 40]
        assert out.supervision.completed == 5
        assert not out.failures

    def test_worker_killed_midbatch_batch_completes(self, tmp_path):
        """A one-off kill -9 breaks the pool; the supervisor respawns it,
        re-runs the in-flight suspects in isolation, and the batch
        completes with no quarantine."""
        marker = tmp_path / "crashed-once"
        out = runner.supervise(
            _dispatch,
            [("ok", 1), ("crash-once", str(marker)), ("ok", 2)],
            n_workers=2,
        )
        assert out.results == [10, "recovered", 20]
        assert out.supervision.crashes >= 1
        assert out.supervision.respawns >= 1
        assert not out.failures

    def test_poison_job_quarantined_batch_completes(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_RETRIES", "1")
        out = runner.supervise(
            _dispatch,
            [("ok", 1), ("poison",), ("ok", 2)],
            keys=["a", "b", "c"],
            n_workers=2,
        )
        # healthy neighbours completed despite sharing the pool
        assert out.results[0] == 10 and out.results[2] == 20
        assert out.results[1] is None
        (failure,) = out.failures
        assert failure.kind == "crash"
        assert failure.key == "b"
        assert failure.attempts == 2  # initial + 1 retry
        assert out.supervision.quarantined == ("b",)

    def test_hung_job_hits_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0.5")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "0")
        start = time.monotonic()
        out = runner.supervise(
            _dispatch, [("hang",), ("ok", 5)], n_workers=2
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30  # nowhere near the 600 s sleep
        assert out.results[1] == 50
        (failure,) = out.failures
        assert failure.kind == "timeout"
        assert "JobTimeout" in failure.error
        assert out.supervision.timeouts == 1

    def test_raising_job_retried_then_quarantined(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_RETRIES", "1")
        out = runner.supervise(
            _dispatch, [("raise",), ("ok", 7)], n_workers=2
        )
        assert out.results[1] == 70
        (failure,) = out.failures
        assert failure.kind == "error"
        assert "boom" in failure.error
        assert failure.attempts == 2
        assert out.supervision.retries == 1

    def test_env_knobs_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "nope")
        with pytest.raises(ValueError, match="REPRO_JOB_TIMEOUT"):
            runner.job_timeout()
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "-1")
        with pytest.raises(ValueError, match=">= 0"):
            runner.retry_backoff()

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            runner.supervise(_dispatch, [("ok", 1)], keys=["a", "b"])


class TestRunJobsSupervision:
    def _job(self, steps=1):
        from repro.experiments.common import (
            cached_graph,
            resolve_configuration,
        )

        config, policy = resolve_configuration("hetero-pim")
        return (cached_graph("alexnet"), policy, config, steps)

    def test_poison_batch_raises_after_completion(self, monkeypatch):
        """run_jobs surfaces quarantined jobs as PoisonJob, but only after
        the healthy jobs completed and landed in the cache."""
        monkeypatch.setenv("REPRO_JOB_RETRIES", "0")
        runner.set_jobs(2)
        try:
            good = self._job(steps=1)
            fingerprint = sim_cache.run_fingerprint(*good, faults=None)
            monkeypatch.setattr(
                runner, "_worker", _poison_first_worker, raising=True
            )
            with pytest.raises(PoisonJob) as excinfo:
                runner.run_jobs([self._job(steps=2), good])
            assert len(excinfo.value.failures) == 1
            # the healthy job's result is cached despite the poison batch
            assert sim_cache.get(fingerprint) is not None
        finally:
            runner.set_jobs(None)

    def test_cache_inconsistency_replaces_assert(self, monkeypatch):
        runner.set_jobs(2)
        try:
            monkeypatch.setattr(sim_cache, "get", lambda fp: None)
            monkeypatch.setattr(
                sim_cache, "put", lambda fp, result, meta=None: None
            )
            with pytest.raises(CacheInconsistency):
                runner.run_jobs([self._job(1), self._job(2)])
        finally:
            runner.set_jobs(None)

    def test_job_tuple_arity_validated(self):
        with pytest.raises(ValueError, match="4 or 5 elements"):
            runner.run_jobs([(1, 2, 3)])


def _poison_first_worker(job):
    """Kill the worker for the 2-step job; run the rest normally."""
    if job[3] == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return runner.sim_cache.simulate_cached(
        job[0], job[1], job[2], steps=job[3], faults=job[4]
    )


class TestJournal:
    def test_roundtrip_and_completed_set(self):
        journal = RunJournal.create("experiment", {"id": "fig9"})
        journal.record_job("aaa", "done", cached=False)
        journal.record_job("bbb", "done", cached=True)
        journal.record_job("ccc", "quarantined", kind="crash", error="x")
        journal.record_event("interrupted", settled=2, total=3)
        journal.close()

        loaded = RunJournal.load(journal.run_id)
        assert loaded.header["kind"] == "experiment"
        assert loaded.header["spec"] == {"id": "fig9"}
        assert loaded.completed_fingerprints() == {"aaa", "bbb"}
        assert loaded.quarantined_fingerprints() == {"ccc"}
        assert loaded.was_interrupted()
        assert not loaded.is_complete()

    def test_every_line_is_standalone_json(self):
        journal = RunJournal.create("experiment", {"id": "table1"})
        for i in range(10):
            journal.record_job(f"fp{i}", "done")
        journal.close()
        path = journal_dir() / f"{journal.run_id}.jsonl"
        lines = path.read_text().splitlines()
        assert len(lines) == 11  # header + 10 jobs
        for line in lines:
            json.loads(line)  # no interleaving, no truncation

    def test_truncated_tail_tolerated(self):
        journal = RunJournal.create("experiment", {"id": "fig8"})
        journal.record_job("aaa", "done")
        journal.close()
        path = journal_dir() / f"{journal.run_id}.jsonl"
        with path.open("a") as fh:
            fh.write('{"event": "job", "fp": "bb')  # kill mid-append
        loaded = RunJournal.load(journal.run_id)
        assert loaded.completed_fingerprints() == {"aaa"}

    def test_complete_seals_and_verifies(self):
        journal = RunJournal.create("experiment", {"id": "fig9"})
        journal.record_job("aaa", "done")
        journal.record_event("complete")
        journal.close()
        loaded = RunJournal.load(journal.run_id)
        assert loaded.sealed is True
        assert loaded.corrupt_lines == 0
        assert loaded.is_complete()

    def test_midfile_bitrot_dropped_and_counted(self):
        journal = RunJournal.create("experiment", {"id": "fig9"})
        for fp in ("aaa", "bbb", "ccc"):
            journal.record_job(fp, "done")
        journal.record_event("complete")
        journal.close()
        path = journal_dir() / f"{journal.run_id}.jsonl"
        # same-length in-place edit: the line stays valid JSON but its
        # content no longer matches its sha — classic silent bit rot
        damaged = path.read_bytes().replace(b'"fp":"bbb"', b'"fp":"bXb"')
        path.write_bytes(damaged)
        loaded = RunJournal.load(journal.run_id)
        # the rotten job line is dropped, and the seal (which commits to
        # the original bytes) no longer verifies
        assert loaded.completed_fingerprints() == {"aaa", "ccc"}
        assert loaded.corrupt_lines == 2  # damaged line + broken seal
        assert loaded.sealed is False

    def test_interior_garbage_line_dropped_not_fatal(self):
        journal = RunJournal.create("experiment", {"id": "fig8"})
        journal.record_job("aaa", "done")
        journal.close()
        path = journal_dir() / f"{journal.run_id}.jsonl"
        header, job = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(header + b"\x00garbage\xff\n" + job)
        loaded = RunJournal.load(journal.run_id)
        assert loaded.completed_fingerprints() == {"aaa"}
        assert loaded.corrupt_lines == 1
        assert not loaded.is_complete()

    def test_strict_load_raises_on_damage(self):
        from repro.errors import CorruptJournalError

        journal = RunJournal.create("experiment", {"id": "fig8"})
        journal.record_job("aaa", "done")
        journal.close()
        path = journal_dir() / f"{journal.run_id}.jsonl"
        header, job = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(header + b"not json\n" + job)
        with pytest.raises(CorruptJournalError, match="not valid JSON"):
            RunJournal.load(journal.run_id, strict=True)
        # the tolerant default still loads the surviving lines
        assert RunJournal.load(
            journal.run_id
        ).completed_fingerprints() == {"aaa"}

    def test_missing_and_invalid_ids_rejected(self):
        with pytest.raises(ExecutionError, match="no journal"):
            RunJournal.load("never-created")
        with pytest.raises(ExecutionError, match="invalid run id"):
            RunJournal.create("experiment", {}, run_id="../escape")

    def test_duplicate_run_id_rejected(self):
        RunJournal.create("experiment", {"id": "fig9"}, run_id="dup").close()
        with pytest.raises(ExecutionError, match="already exists"):
            RunJournal.create("experiment", {"id": "fig9"}, run_id="dup")

    def test_list_runs_most_recent_first(self):
        RunJournal.create("experiment", {}, run_id="one").close()
        time.sleep(0.02)
        RunJournal.create("experiment", {}, run_id="two").close()
        runs = list_runs()
        assert runs[0] == "two" and "one" in runs
        assert latest_run_id() == "two"

    def test_run_jobs_journals_cached_and_fresh(self):
        from repro.experiments.common import (
            cached_graph,
            resolve_configuration,
        )

        config, policy = resolve_configuration("hetero-pim")
        job = (cached_graph("alexnet"), policy, config, 1)
        journal = RunJournal.create("experiment", {"id": "adhoc"})
        with runner.attach_journal(journal):
            runner.run_jobs([job])
            runner.run_jobs([job])  # second call: pure cache hit
        journal.close()
        jobs = [
            line
            for line in journal.lines
            if line.get("event") == "job"
        ]
        assert [j["cached"] for j in jobs] == [False]  # hit not re-logged
        assert len(journal.completed_fingerprints()) == 1


class TestWriteAtomic:
    def test_writes_and_overwrites(self, tmp_path):
        target = tmp_path / "deep" / "artifact.txt"
        write_atomic(target, "one")
        assert target.read_text() == "one"
        write_atomic(target, "two")
        assert target.read_text() == "two"

    def test_no_temp_droppings(self, tmp_path):
        target = tmp_path / "artifact.txt"
        for i in range(3):
            write_atomic(target, f"v{i}")
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


class TestCachePrune:
    def _seed_entries(self, sizes):
        objects = sim_cache.cache_dir() / "objects" / "v0" / "aa"
        objects.mkdir(parents=True)
        now = time.time()
        paths = []
        for i, size in enumerate(sizes):
            path = objects / f"entry{i}.json"
            path.write_text("x" * size)
            # oldest first: entry0 is the least recently used
            os.utime(path, (now - 100 + i, now - 100 + i))
            paths.append(path)
        return paths

    def test_lru_eviction_to_budget(self):
        paths = self._seed_entries([100, 100, 100, 100])
        before = sim_cache.stats()["pruned_entries"]
        outcome = sim_cache.prune(max_bytes=250)
        assert outcome["removed_entries"] == 2
        assert outcome["kept_bytes"] == 200
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        stats = sim_cache.stats()
        assert stats["pruned_entries"] == before + 2
        assert stats["pruned_bytes"] >= 200

    def test_disk_usage_and_noop_prune(self):
        self._seed_entries([50, 50])
        usage = sim_cache.disk_usage()
        assert usage == {"disk_entries": 2, "disk_bytes": 100}
        outcome = sim_cache.prune(max_bytes=1000)
        assert outcome["removed_entries"] == 0
        assert outcome["kept_entries"] == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            sim_cache.prune(-1)

    def test_disk_hit_refreshes_mtime_for_lru(self):
        """Reading an entry must protect it from the next prune."""
        from repro.experiments.common import (
            cached_graph,
            resolve_configuration,
        )

        config, policy = resolve_configuration("hetero-pim")
        graph = cached_graph("alexnet")
        result = sim_cache.simulate_cached(graph, policy, config, steps=1)
        assert result is not None
        fingerprint = sim_cache.run_fingerprint(
            graph, policy, config, 1, faults=None
        )
        path = sim_cache._object_path(fingerprint)
        old = time.time() - 3600
        os.utime(path, (old, old))
        sim_cache._memory.clear()
        assert sim_cache.get(fingerprint) is not None  # disk hit
        assert path.stat().st_mtime > old + 1800


class TestTenantAccounting:
    """Per-tenant accounting over the shared content-addressed tiers."""

    @pytest.fixture(autouse=True)
    def _fresh_tenant_state(self):
        with sim_cache._tenant_lock:
            sim_cache._tenant_stats.clear()
            sim_cache._tenant_seen.clear()
        yield

    def _simulate_as(self, tenant, model, steps=1):
        from repro.experiments.common import (
            cached_graph,
            resolve_configuration,
        )

        config, policy = resolve_configuration("hetero-pim")
        graph = cached_graph(model)
        with sim_cache.tenant_scope(tenant):
            sim_cache.simulate_cached(graph, policy, config, steps=steps)

    def test_counters_attributed_to_scope(self):
        self._simulate_as("a", "lstm")  # miss + store
        self._simulate_as("a", "lstm")  # memory hit
        stats = sim_cache.tenant_stats()
        assert stats["a"] == {"hits": 1, "misses": 1, "stores": 1}
        assert "b" not in stats

    def test_shared_entries_counted_once_in_union(self):
        """Regression: two namespaces referencing the same objects/v5
        entry must not double-count its bytes in the combined total."""
        self._simulate_as("a", "lstm")
        self._simulate_as("b", "lstm")  # same entry, hit under b
        self._simulate_as("a", "word2vec")  # a-only entry
        usage = sim_cache.tenant_disk_usage()
        a, b = usage["tenants"]["a"], usage["tenants"]["b"]
        assert a["entries"] == 2 and b["entries"] == 1
        # the shared lstm entry appears in BOTH per-tenant rows...
        assert a["bytes"] + b["bytes"] > usage["union_bytes"]
        # ...but exactly once in the union: union = a + b - shared
        assert usage["shared_entries"] == 1
        assert (
            usage["union_bytes"]
            == a["bytes"] + b["bytes"] - usage["shared_bytes"]
        )
        assert usage["union_entries"] == 2

    def test_pruned_entries_drop_out_of_usage(self):
        self._simulate_as("a", "lstm")
        usage = sim_cache.tenant_disk_usage()
        assert usage["tenants"]["a"]["entries"] == 1
        sim_cache.prune(max_bytes=0)  # evict everything
        after = sim_cache.tenant_disk_usage()
        assert after["tenants"]["a"] == {"entries": 0, "bytes": 0}
        assert after["union_bytes"] == 0

    def test_cache_stats_cli_reports_tenants(self, tmp_path):
        self._simulate_as("a", "lstm")
        self._simulate_as("b", "lstm")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        out = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "stats"],
            env=env,
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert "tenants:" in out
        assert "(shared)" in out and "(union)" in out


class TestInterruptAndResume:
    """SIGINT mid-batch, then `repro resume`: artifacts byte-identical
    to an uninterrupted serial run (the paper-evaluation invariant)."""

    def _run_cli(self, args, cache_dir, jobs, **kwargs):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        env["REPRO_JOBS"] = str(jobs)
        env.pop("REPRO_JOB_TIMEOUT", None)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
            **kwargs,
        )

    def test_sigint_then_resume_byte_identical(self, tmp_path):
        baseline = self._run_cli(
            ["experiment", "faults"], tmp_path / "cache-serial", jobs=1
        )
        assert baseline.returncode == 0, baseline.stderr

        chaos_cache = tmp_path / "cache-chaos"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(chaos_cache)
        env["REPRO_JOBS"] = "2"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "experiment", "faults", "--run-id", "chaos",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        journal = chaos_cache / "journal" / "chaos.jsonl"
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            if journal.exists() and '"status":"done"' in journal.read_text():
                proc.send_signal(signal.SIGINT)
                break
            time.sleep(0.05)
        proc.communicate(timeout=120)
        # Either we caught it mid-batch (130) or it beat us to the finish
        # (0).  A raw -SIGINT death is a bug: by the time the journal has
        # a done line the CLI's handler is installed, and main() shields
        # interpreter teardown with SIG_IGN once the exit code is decided.
        assert proc.returncode in (130, 0)

        resumed = self._run_cli(["resume", "chaos"], chaos_cache, jobs=2)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == baseline.stdout


class TestFriendlyCliErrors:
    """Missing/empty state must produce a pointer, not a traceback."""

    def _run_cli(self, args, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_cache_stats_missing_dir_exits_1_with_hint(self, tmp_path):
        proc = self._run_cli(["cache", "stats"], tmp_path / "nowhere")
        assert proc.returncode == 1
        assert "missing" in proc.stderr
        assert "repro run" in proc.stderr  # actionable next step
        assert "Traceback" not in proc.stderr

    def test_cache_stats_empty_dir_exits_1_with_hint(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        proc = self._run_cli(["cache", "stats"], empty)
        assert proc.returncode == 1
        assert "empty" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_resume_without_journal_exits_1_with_hint(self, tmp_path):
        proc = self._run_cli(["resume"], tmp_path / "nowhere")
        assert proc.returncode == 1
        assert "no journaled runs" in proc.stderr
        assert "repro experiment" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_resume_unknown_run_id_exits_1(self, tmp_path):
        cache = tmp_path / "cache"
        (cache / "journal").mkdir(parents=True)
        proc = self._run_cli(["resume", "no-such-run"], cache)
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr
