"""Runtime system: selection, scheduler policy, registers, PIM-side ledger."""

import pytest

from repro.config import default_config
from repro.errors import HardwareConfigError, SchedulingError
from repro.hardware.fixed_pim import FixedPIMPool
from repro.hardware.hmc import StackGeometry
from repro.hardware.placement import place_fixed_pims
from repro.hardware.prog_pim import ProgPIMCluster
from repro.nn.models import build_model
from repro.profiling import WorkloadProfiler
from repro.runtime import (
    HeterogeneousPimRuntime,
    HeteroPimPolicy,
    PimSideRuntime,
    UtilizationRegisters,
    rank_operations,
    select_candidates,
)
from repro.runtime.scheduler import MixedWorkloadPolicy


@pytest.fixture(scope="module")
def vgg_profile():
    return WorkloadProfiler().profile(build_model("vgg-19"))


class TestSelection:
    def test_global_index_is_sum_of_ranks(self, vgg_profile):
        ranked = rank_operations(vgg_profile)
        for r in ranked:
            assert r.global_index == r.time_rank + r.memory_rank
        # sorted by ascending global index
        indexes = [r.global_index for r in ranked]
        assert indexes == sorted(indexes)

    def test_hottest_type_ranks_first(self, vgg_profile):
        ranked = rank_operations(vgg_profile)
        # Conv2DBackpropFilter tops both VGG-19 lists in Table I
        assert ranked[0].op_type == "Conv2DBackpropFilter"
        assert ranked[0].global_index <= ranked[1].global_index

    def test_selection_covers_target(self, vgg_profile):
        sel = select_candidates(vgg_profile, coverage=0.90)
        assert sel.time_coverage >= 0.90
        assert sel.target_coverage == 0.90

    def test_selected_types_include_conv_backprops(self, vgg_profile):
        sel = select_candidates(vgg_profile)
        assert "Conv2DBackpropFilter" in sel.candidate_types
        assert "Conv2DBackpropInput" in sel.candidate_types

    def test_candidates_are_instances_of_selected_types(self, vgg_profile):
        sel = select_candidates(vgg_profile)
        by_name = {p.op_name: p.op_type for p in vgg_profile.per_op}
        for name in sel.candidates:
            assert by_name[name] in sel.candidate_types
        assert sel.is_candidate(next(iter(sel.candidates)))

    def test_full_coverage_selects_all_timed_work(self, vgg_profile):
        sel = select_candidates(vgg_profile, coverage=1.0)
        assert sel.time_coverage == pytest.approx(1.0)
        # every op type with nonzero time is selected (zero-cost
        # bookkeeping types may fall outside the coverage sum)
        timed = {t.op_type for t in vgg_profile.by_type if t.time_s > 0}
        assert timed <= sel.candidate_types

    def test_invalid_coverage_rejected(self, vgg_profile):
        with pytest.raises(SchedulingError):
            select_candidates(vgg_profile, coverage=0.0)
        with pytest.raises(SchedulingError):
            select_candidates(vgg_profile, coverage=1.5)

    def test_equal_cost_ranks_independent_of_insertion_order(self):
        """Regression: equal-cost types used to keep profile insertion
        order in the rank sorts, so the candidate set could flip with
        dict/topological ordering.  Ties now break on op_type."""
        from repro.profiling.profiler import TypeProfile, WorkloadProfile

        def type_profile(op_type):
            # two types with byte-identical cost profiles
            return TypeProfile(
                op_type=op_type, invocations=3, time_s=2.0,
                memory_bytes=4096, time_share=0.5, memory_share=0.5,
            )

        def workload(order):
            return WorkloadProfile(
                model_name="tie", step_time_s=4.0,
                total_memory_bytes=8192, per_op=(),
                by_type=tuple(type_profile(t) for t in order),
            )

        forward = rank_operations(workload(("MatMul", "Relu")))
        reverse = rank_operations(workload(("Relu", "MatMul")))
        assert forward == reverse
        # lexicographic tie-break: MatMul < Relu on every rank
        assert [r.op_type for r in forward] == ["MatMul", "Relu"]
        assert forward[0].time_rank == 0 and forward[1].time_rank == 1
        assert forward[0].memory_rank == 0 and forward[1].memory_rank == 1


class TestHeteroPolicy:
    @pytest.fixture(scope="class")
    def prepared(self):
        policy = HeteroPimPolicy()
        policy.prepare(build_model("alexnet"), default_config())
        return policy

    def test_placement_by_offload_class(self, prepared):
        g = build_model("alexnet")
        conv = next(op for op in g.ops if op.op_type == "Conv2D")
        cbf = next(op for op in g.ops if op.op_type == "Conv2DBackpropFilter")
        relu = next(op for op in g.ops if op.op_type == "Relu")
        reshape = next(op for op in g.ops if op.op_type == "Reshape")
        assert prepared.placements(conv) == ("fixed", "cpu")
        assert prepared.placements(cbf) == ("hybrid", "cpu")
        assert prepared.placements(relu) == ("prog", "cpu")
        assert prepared.placements(reshape) == ("cpu",)

    def test_pipeline_depth_follows_op_flag(self):
        on = HeteroPimPolicy(operation_pipeline=True)
        off = HeteroPimPolicy(operation_pipeline=False)
        on.prepare(build_model("dcgan"), default_config())
        off.prepare(build_model("dcgan"), default_config())
        assert on.pipeline_depth >= 1
        assert off.pipeline_depth == 0


class TestMixedWorkloadPolicy:
    def test_restricted_ops_avoid_the_pool(self):
        from repro.nn.graph import merge_graphs

        cnn = build_model("dcgan")
        tenant = build_model("word2vec")
        merged = merge_graphs("co", [cnn, tenant])
        policy = MixedWorkloadPolicy(frozenset({"word2vec"}))
        policy.prepare(merged, default_config())
        tenant_matmul = next(
            op for op in merged.ops
            if op.attrs.get("source_model") == "word2vec"
            and op.op_type == "MatMul"
        )
        assert "fixed" not in policy.placements(tenant_matmul)
        assert policy.priority(tenant_matmul) == 1
        cnn_conv = next(
            op for op in merged.ops
            if op.attrs.get("source_model") == "dcgan"
            and op.op_type == "Conv2D"
        )
        assert policy.placements(cnn_conv) == ("fixed", "cpu")
        assert policy.priority(cnn_conv) == 0

    def test_restrict_untagged(self):
        g = build_model("word2vec")
        policy = MixedWorkloadPolicy(frozenset(), restrict_untagged=True)
        policy.prepare(g, default_config())
        matmul = next(op for op in g.ops if op.op_type == "MatMul")
        assert "fixed" not in policy.placements(matmul)


class TestRegisters:
    def _registers(self, n_units=444):
        geometry = StackGeometry(default_config().stack)
        placement = place_fixed_pims(geometry, n_units)
        pool = FixedPIMPool(n_units)
        cluster = ProgPIMCluster(1)
        return UtilizationRegisters(pool, cluster, placement), pool, cluster

    def test_idle_snapshot(self):
        regs, _pool, _cluster = self._registers()
        snap = regs.snapshot()
        assert not any(snap.bank_busy)
        assert snap.any_fixed_idle and snap.any_prog_idle

    def test_busy_bits_fill_with_allocation(self):
        regs, pool, cluster = self._registers()
        pool.allocate("k", 444, now=0.0)
        cluster.acquire("op", now=0.0)
        snap = regs.snapshot()
        assert all(snap.bank_busy)
        assert all(snap.prog_pim_busy)
        assert regs.idle_bank_count() == 0

    def test_partial_allocation_leaves_idle_banks(self):
        regs, pool, _ = self._registers()
        pool.allocate("k", 434, now=0.0)  # all but 10 units
        assert 0 < regs.idle_bank_count() < 32

    def test_mismatched_placement_rejected(self):
        geometry = StackGeometry(default_config().stack)
        placement = place_fixed_pims(geometry, 100)
        with pytest.raises(HardwareConfigError):
            UtilizationRegisters(FixedPIMPool(444), ProgPIMCluster(1), placement)


class TestPimSideRuntime:
    def test_ledger_tracks_progress(self):
        rt = PimSideRuntime()
        rt.begin_op("conv/CBF", muls=100, adds=100)
        rt.record_sub_kernel("conv/CBF", muls=40, adds=40)
        entry = rt.entry("conv/CBF")
        assert entry.remaining_muls == 60
        assert entry.progress == pytest.approx(0.4)
        rt.record_sub_kernel("conv/CBF", muls=60, adds=60)
        rt.finish_op("conv/CBF")
        assert rt.completion.is_done("conv/CBF")
        assert rt.recursive_dispatches == 2

    def test_over_report_rejected(self):
        rt = PimSideRuntime()
        rt.begin_op("op", muls=10, adds=10)
        with pytest.raises(SchedulingError):
            rt.record_sub_kernel("op", muls=11, adds=0)

    def test_duplicate_in_flight_rejected(self):
        rt = PimSideRuntime()
        rt.begin_op("op", muls=1, adds=1)
        with pytest.raises(SchedulingError):
            rt.begin_op("op", muls=1, adds=1)

    def test_unknown_op_rejected(self):
        with pytest.raises(SchedulingError):
            PimSideRuntime().finish_op("ghost")

    def test_in_flight_listing(self):
        rt = PimSideRuntime()
        rt.begin_op("a", 1, 1)
        rt.begin_op("b", 1, 1)
        rt.finish_op("a")
        assert [e.op_name for e in rt.in_flight()] == ["b"]


class TestHostRuntimeFacade:
    def test_device_summary(self):
        rt = HeterogeneousPimRuntime()
        summary = rt.device_summary()
        assert summary["fixed_pim"] == 444
        assert summary["prog_pim_0"] == 4

    def test_compile_produces_kernels_for_all_ops(self):
        rt = HeterogeneousPimRuntime()
        g = build_model("dcgan")
        kernels = rt.compile(g)
        assert set(kernels) == {op.name for op in g.ops}

    def test_train_end_to_end(self):
        rt = HeterogeneousPimRuntime()
        result = rt.train(build_model("dcgan"), steps=2)
        assert result.config_name == "Hetero PIM"
        assert result.step_time_s > 0
        assert rt.last_selection is not None

    def test_last_selection_none_before_train(self):
        assert HeterogeneousPimRuntime().last_selection is None
