"""The ``repro serve`` daemon: protocol, quotas, dedup, durability.

End-to-end tests run a real daemon (in-thread for speed, subprocess for
the crash-recovery scenario) against an isolated cache and talk to it
over real sockets with the raw client from :mod:`repro.serve.bench` —
the same client the benchmarks and the CI gate use.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.errors import ProtocolError, ServeError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.serve import start_in_thread
from repro.serve.bench import http_request, percentile, post_simulate
from repro.serve.http import read_request, render_response
from repro.serve.protocol import (
    DEFAULT_TENANT,
    SimulateRequest,
    parse_simulate_request,
)
from repro.serve.quota import QuotaTable, TokenBucket
from repro.sim import cache as sim_cache

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Throwaway cache dir; reset every process-global cache tier."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    sim_cache._memory.clear()
    sim_cache.reset_stats()
    with sim_cache._tenant_lock:
        sim_cache._tenant_stats.clear()
        sim_cache._tenant_seen.clear()
    yield
    sim_cache._memory.clear()


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_minimal_request_defaults(self):
        request = parse_simulate_request(b'{"model": "alexnet"}', {})
        assert request == SimulateRequest(model="alexnet")
        assert request.tenant == DEFAULT_TENANT

    def test_tenant_header_fallback_and_body_override(self):
        from_header = parse_simulate_request(
            b'{"model": "alexnet"}', {"x-repro-tenant": "team-a"}
        )
        assert from_header.tenant == "team-a"
        from_body = parse_simulate_request(
            b'{"model": "alexnet", "tenant": "team-b"}',
            {"x-repro-tenant": "team-a"},
        )
        assert from_body.tenant == "team-b"

    @pytest.mark.parametrize(
        "body, fragment",
        [
            (b"not json", "not valid JSON"),
            (b"[1, 2]", "JSON object"),
            (b"{}", "missing field 'model'"),
            (b'{"model": "nope"}', "unknown model"),
            (b'{"model": "alexnet", "modle": 1}', "unknown field"),
            (b'{"model": "alexnet", "steps": 0}', "'steps'"),
            (b'{"model": "alexnet", "steps": true}', "'steps'"),
            (b'{"model": "alexnet", "batch_size": -4}', "'batch_size'"),
            (b'{"model": "alexnet", "frequency_scale": 0}', "positive"),
            (b'{"model": "alexnet", "surrogate": "yes"}', "'surrogate'"),
            (b'{"model": "alexnet", "backend": "nope"}', "unknown backend"),
            (b'{"model": "alexnet", "config": "nope"}', "unknown config"),
            (b'{"model": "alexnet", "tenant": "../x"}', "invalid tenant"),
        ],
    )
    def test_rejects_with_status_400(self, body, fragment):
        with pytest.raises(ProtocolError) as err:
            parse_simulate_request(body, {})
        assert err.value.status == 400
        assert fragment in str(err.value)

    def test_round_trips_through_journal_spec(self):
        """The recovery path rebuilds the identical request from the
        journaled dict — one validation contract for both paths."""
        from repro.serve.protocol import build_simulate_request

        original = parse_simulate_request(
            b'{"model": "lstm", "steps": 2, "priority": 5, "wait": false}',
            {},
        )
        rebuilt = build_simulate_request(original.to_dict(), {})
        assert rebuilt == original


class TestHttpLayer:
    def _read(self, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(go())

    def test_parses_request_line_headers_body(self):
        request = self._read(
            b"POST /v1/simulate?x=1 HTTP/1.1\r\n"
            b"Content-Length: 2\r\n"
            b"X-Repro-Tenant: t\r\n\r\n{}"
        )
        assert request.method == "POST"
        assert request.path == "/v1/simulate"
        assert request.query == {"x": "1"}
        assert request.header("x-repro-tenant") == "t"
        assert request.body == b"{}"

    def test_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as err:
            self._read(b"BOGUS\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_rejected_413(self):
        huge = 10 * 1024 * 1024
        with pytest.raises(ProtocolError) as err:
            self._read(
                f"POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n".encode()
            )
        assert err.value.status == 413

    def test_render_response_shape(self):
        raw = render_response(200, b"{}\n", extra_headers=[("X-A", "1")])
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Length: 3" in head
        assert b"Connection: close" in head
        assert b"X-A: 1" in head
        assert body == b"{}\n"


# ---------------------------------------------------------------------------
# quotas + metrics primitives
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: clock[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # bucket dry
        clock[0] = 1.5
        assert bucket.try_acquire()  # 1.5 tokens refilled
        assert not bucket.try_acquire()

    def test_burst_capped(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: clock[0])
        clock[0] = 100.0
        assert bucket.remaining == 3.0

    def test_bad_burst_rejected(self):
        with pytest.raises(ServeError):
            TokenBucket(rate=1.0, burst=0)

    def test_quota_table_disabled_admits_everyone(self):
        table = QuotaTable(rate=0.0)
        assert all(table.admit("t") for _ in range(100))
        assert table.snapshot()["t"]["admitted"] == 100

    def test_quota_table_per_tenant_isolation(self):
        table = QuotaTable(rate=0.001, burst=1)
        assert table.admit("a")
        assert not table.admit("a")  # a is dry...
        assert table.admit("b")  # ...b is untouched
        snap = table.snapshot()
        assert snap["a"]["rejected"] == 1
        assert snap["b"]["rejected"] == 0


class TestHistogram:
    def test_quantiles_interpolate(self):
        hist = Histogram("t", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            hist.observe(value)
        assert hist.count == 4
        assert 0.0 < hist.quantile(0.5) <= 2.0
        assert hist.quantile(0.0) <= hist.quantile(1.0)
        assert hist.mean() == pytest.approx(1.65)

    def test_overflow_bucket(self):
        hist = Histogram("t", bounds=(1.0,))
        hist.observe(50.0)
        assert hist.quantile(0.99) >= 1.0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=(2.0, 1.0))

    def test_registry_integration(self):
        registry = MetricsRegistry()
        registry.histogram("lat", (1.0, 2.0)).observe(1.5)
        assert registry.snapshot()["lat"] == (0, 1, 0)
        with pytest.raises(ValueError):
            registry.counter("lat")  # name taken by another type

    def test_percentile_helper(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)


# ---------------------------------------------------------------------------
# end-to-end daemon (in-thread)
# ---------------------------------------------------------------------------
REQUEST = {"model": "lstm", "steps": 1}


class TestDaemonEndToEnd:
    def test_served_report_byte_identical_to_session(self):
        handle = start_in_thread(workers=1)
        try:
            status, headers, body = post_simulate(
                handle.host, handle.port, REQUEST
            )
        finally:
            handle.stop()
        assert status == 200
        assert headers.get("x-repro-served-from") == "run"
        direct = api.Session("anonymous").simulate(**REQUEST)
        assert body == (direct.to_json() + "\n").encode()
        # the report parses back into the full v5 report schema
        parsed = json.loads(body)
        assert parsed["model"] == REQUEST["model"]
        assert parsed["steps"] == REQUEST["steps"]
        # call-local jitter is canonicalized away, not serialized
        assert parsed["cache_stats"] is None

    def test_concurrent_identical_requests_dedup_to_one_simulation(self):
        handle = start_in_thread(workers=2)
        results = [None] * 6
        try:

            def client(i):
                results[i] = post_simulate(handle.host, handle.port, REQUEST)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            handle.stop()
        assert [r[0] for r in results] == [200] * 6
        assert len({r[2] for r in results}) == 1
        stats = sim_cache.stats()
        assert stats["misses"] == 1 and stats["stores"] == 1
        served_from = sorted(r[1]["x-repro-served-from"] for r in results)
        assert served_from.count("run") == 1

    def test_quota_free_for_dedup_and_store_hits(self):
        """A burst-1 quota still answers repeats of the same request —
        only *fresh* simulations are charged (the CI double-POST rule)."""
        handle = start_in_thread(workers=1, quota_rate=0.001, quota_burst=1)
        try:
            first = post_simulate(handle.host, handle.port, REQUEST)
            second = post_simulate(handle.host, handle.port, REQUEST)
            other = post_simulate(
                handle.host, handle.port, {"model": "alexnet", "steps": 1}
            )
        finally:
            handle.stop()
        assert first[0] == 200
        assert second[0] == 200  # store hit: not charged
        assert second[1]["x-repro-served-from"] == "store"
        assert other[0] == 429  # fresh simulation: bucket is dry
        assert b"quota" in other[2]

    def test_validation_errors_answer_400_without_queueing(self):
        handle = start_in_thread(workers=1)
        try:
            status, _headers, body = post_simulate(
                handle.host, handle.port, {"model": "bogus"}
            )
            health = json.loads(
                http_request(handle.host, handle.port, "GET", "/v1/healthz")[2]
            )
        finally:
            handle.stop()
        assert status == 400
        assert b"unknown model" in body
        assert health["accepted"] == 0

    def test_get_endpoints(self):
        handle = start_in_thread(workers=1)
        try:
            status, headers, body = post_simulate(
                handle.host, handle.port, REQUEST
            )
            rid = headers["x-repro-request-id"]
            report = http_request(
                handle.host, handle.port, "GET", f"/v1/report/{rid}"
            )
            missing = http_request(
                handle.host, handle.port, "GET", "/v1/report/feedface"
            )
            backends = json.loads(
                http_request(handle.host, handle.port, "GET", "/v1/backends")[2]
            )
            trace = json.loads(
                http_request(
                    handle.host, handle.port, "GET", f"/v1/trace/{rid}"
                )[2]
            )
            health = json.loads(
                http_request(handle.host, handle.port, "GET", "/v1/healthz")[2]
            )
            unknown = http_request(handle.host, handle.port, "GET", "/nope")
        finally:
            handle.stop()
        assert report[0] == 200 and report[2] == body
        assert missing[0] == 404
        assert "hmc-hetero" in backends["backends"]
        assert backends["backends"]["hmc-hetero"]["configurations"]
        names = {ev["name"] for ev in trace["traceEvents"]}
        assert any(name.startswith("queued:") for name in names)
        assert health["status"] == "ok"
        assert health["completed"] == 1
        assert health["latency_ms"]["count"] >= 1
        assert health["tenants"]["cache"]["anonymous"]["stores"] == 1
        assert unknown[0] == 404

    def test_async_submission_and_poll(self):
        handle = start_in_thread(workers=1)
        try:
            status, _headers, body = post_simulate(
                handle.host, handle.port, dict(REQUEST, wait=False)
            )
            assert status == 202
            rid = json.loads(body)["id"]
            deadline = time.time() + 60
            report_status = 0
            while time.time() < deadline:
                report_status, _h, report_body = http_request(
                    handle.host, handle.port, "GET", f"/v1/report/{rid}"
                )
                if report_status == 200:
                    break
                time.sleep(0.05)
        finally:
            handle.stop()
        assert report_status == 200
        direct = api.Session("anonymous").simulate(**REQUEST)
        assert report_body == (direct.to_json() + "\n").encode()

    def test_drain_serves_queued_work_before_exit(self):
        handle = start_in_thread(workers=1)
        try:
            post_simulate(
                handle.host, handle.port, dict(REQUEST, wait=False)
            )
        finally:
            handle.stop()  # drain=True: must finish the queued request
        stats = sim_cache.stats()
        assert stats["misses"] == 1 and stats["stores"] == 1


# ---------------------------------------------------------------------------
# crash recovery (subprocess: the only way to lose in-memory state)
# ---------------------------------------------------------------------------
class TestRestartResume:
    def _spawn(self, cache_dir, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
            env=env,
            cwd=REPO,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = proc.stderr.readline()
        assert "listening on" in banner, banner
        port = int(
            banner.split("listening on ")[1].split(" ")[0].split(":")[1]
        )
        return proc, port

    def test_sigkill_midbatch_restart_reserves_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        proc, port = self._spawn(cache, "--workers", "1")
        ids = []
        try:
            for model in ("lstm", "word2vec"):
                status, _h, body = post_simulate(
                    "127.0.0.1", port,
                    {"model": model, "steps": 1, "wait": False},
                )
                assert status == 202
                ids.append(json.loads(body)["id"])
        finally:
            proc.kill()
            proc.wait()

        proc, port = self._spawn(cache, "--workers", "2")
        try:
            deadline = time.time() + 120
            bodies = {}
            pending = set(ids)
            while pending and time.time() < deadline:
                for rid in sorted(pending):
                    status, _h, body = http_request(
                        "127.0.0.1", port, "GET", f"/v1/report/{rid}"
                    )
                    if status == 200:
                        bodies[rid] = body
                        pending.discard(rid)
                if pending:
                    time.sleep(0.2)
            assert not pending, f"never recovered: {pending}"
        finally:
            proc.kill()
            proc.wait()

        # byte-identical to the library path, computed fresh in-process
        for model, rid in zip(("lstm", "word2vec"), ids):
            direct = api.Session("anonymous").simulate(model, steps=1)
            assert bodies[rid] == (direct.to_json() + "\n").encode()

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, port = self._spawn(tmp_path / "cache")
        post_simulate(
            "127.0.0.1", port, {"model": "lstm", "steps": 1, "wait": False}
        )
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0


class TestOverloadProtection:
    """Bounded queue, deadlines, and the exact-path circuit breaker."""

    def _slow_execute(self, delay_s=0.8):
        from repro.chaos import ChaosRule, injector, make_spec

        injector.activate(make_spec(1, [
            ChaosRule(
                site="serve.execute", kind="slow_io",
                one_in=1, delay_s=delay_s,
            ),
        ]))
        return injector

    def test_expired_deadline_answers_504_without_a_worker(self):
        chaos = self._slow_execute()
        handle = start_in_thread(workers=1)
        try:
            busy = [None]

            def occupy():
                busy[0] = post_simulate(
                    handle.host, handle.port, {"model": "lstm", "steps": 2}
                )

            t = threading.Thread(target=occupy)
            t.start()
            time.sleep(0.3)  # the single worker is now inside slow_io
            status, headers, body = http_request(
                handle.host, handle.port, "POST", "/v1/simulate",
                json.dumps({"model": "lstm", "steps": 3}).encode(),
                headers={"X-Repro-Deadline-Ms": "50"},
            )
            t.join()
        finally:
            handle.stop()
            chaos.deactivate()
        assert busy[0][0] == 200
        assert status == 504
        assert b"deadline expired" in body
        assert "x-repro-request-id" in headers

    def test_invalid_deadline_header_is_400(self):
        handle = start_in_thread(workers=1)
        try:
            status, _headers, body = http_request(
                handle.host, handle.port, "POST", "/v1/simulate",
                json.dumps({"model": "lstm", "steps": 1}).encode(),
                headers={"X-Repro-Deadline-Ms": "soon"},
            )
        finally:
            handle.stop()
        assert status == 400
        assert b"X-Repro-Deadline-Ms" in body or b"x-repro-deadline-ms" in body

    def test_full_bounded_queue_sheds_503_with_retry_after(self):
        chaos = self._slow_execute()
        handle = start_in_thread(workers=1, max_queue=1)
        try:
            results = {}

            def post(key, steps):
                results[key] = post_simulate(
                    handle.host, handle.port, {"model": "lstm", "steps": steps}
                )

            t_busy = threading.Thread(target=post, args=("busy", 2))
            t_busy.start()
            time.sleep(0.3)
            flood = [
                threading.Thread(target=post, args=(f"f{i}", 3 + i))
                for i in range(3)
            ]
            for t in flood:
                t.start()
            for t in [t_busy, *flood]:
                t.join()
            health = json.loads(
                http_request(handle.host, handle.port, "GET", "/v1/healthz")[2]
            )
        finally:
            handle.stop()
            chaos.deactivate()
        statuses = sorted(results[k][0] for k in results)
        assert statuses.count(503) >= 1, statuses
        assert statuses.count(200) >= 2, statuses  # busy + the queued one
        for key, (status, headers, body) in results.items():
            if status == 503:
                assert int(headers["retry-after"]) >= 1
                assert b"queue is full" in body
        assert health["max_queue"] == 1
        assert 1 <= health["queue_peak"] <= 1

    def test_breaker_trips_on_consecutive_500s_and_recovers(self, monkeypatch):
        original = api.Session.simulate
        broken = {"on": True}

        def flaky(self, *args, **kwargs):
            if broken["on"]:
                raise RuntimeError("injected infrastructure failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(api.Session, "simulate", flaky)
        handle = start_in_thread(
            workers=1, breaker_threshold=2, breaker_reset_s=60.0
        )
        try:
            first = post_simulate(
                handle.host, handle.port, {"model": "lstm", "steps": 2}
            )
            second = post_simulate(
                handle.host, handle.port, {"model": "lstm", "steps": 3}
            )
            health = json.loads(
                http_request(handle.host, handle.port, "GET", "/v1/healthz")[2]
            )
            # with no trained surrogate the degraded path falls back to
            # exact simulation — requests keep succeeding once the
            # infrastructure fault clears, even with the breaker open
            broken["on"] = False
            third = post_simulate(
                handle.host, handle.port, {"model": "lstm", "steps": 4}
            )
        finally:
            handle.stop()
        assert first[0] == 500 and second[0] == 500
        assert health["breaker"]["open"] is True
        assert health["breaker"]["consecutive_failures"] >= 2
        assert health["counters"]["serve.breaker_trips"] == 1
        assert third[0] == 200
        assert "x-repro-degraded" not in third[1]
