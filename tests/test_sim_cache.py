"""Content-addressed simulation cache + parallel runner."""

import dataclasses

import pytest

from repro.baselines import build_configuration
from repro.config import default_config
from repro.experiments import clear_caches, run_model_on, runner
from repro.nn.models import build_model
from repro.runtime.scheduler import HeteroPimPolicy, MixedWorkloadPolicy
from repro.sim import cache as sim_cache
from repro.sim.cache import run_fingerprint, simulate_cached
from repro.sim.simulation import Simulation

MODEL = "lstm"  # smallest evaluation workload: keeps these tests quick


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk tier at a throwaway directory; drop the memory tier."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    sim_cache._memory.clear()
    sim_cache.reset_stats()
    runner.set_jobs(None)
    yield
    sim_cache._memory.clear()
    runner.set_jobs(None)


def _job():
    config, policy = build_configuration("hetero-pim")
    return build_model(MODEL), policy, config


class TestFingerprint:
    def test_stable_across_equal_content(self):
        g1, p1, c1 = _job()
        g2, p2, c2 = _job()
        assert run_fingerprint(g1, p1, c1) == run_fingerprint(g2, p2, c2)

    def test_every_config_field_invalidates(self):
        # perturbing ANY numeric/bool/str field anywhere in the SystemConfig
        # tree must produce a different fingerprint
        graph, policy, config = _job()
        reference = run_fingerprint(graph, policy, config)
        for section_field in dataclasses.fields(config):
            section = getattr(config, section_field.name)
            if not dataclasses.is_dataclass(section):
                # scalar top-level field (e.g. the backend tag)
                assert isinstance(section, str), section_field.name
                mutated = dataclasses.replace(
                    config, **{section_field.name: section + "-x"}
                )
                assert run_fingerprint(graph, policy, mutated) != reference, (
                    f"{section_field.name} change did not change the "
                    "fingerprint"
                )
                continue
            for leaf in dataclasses.fields(section):
                value = getattr(section, leaf.name)
                if isinstance(value, bool):
                    perturbed = not value
                elif isinstance(value, int):
                    perturbed = value + 1
                elif isinstance(value, float):
                    perturbed = value * 1.5 + 1.0
                elif isinstance(value, str):
                    perturbed = value + "-x"
                elif isinstance(value, dict):
                    perturbed = {**value, "__probe__": 1.0}
                else:  # pragma: no cover - new field kinds must be handled
                    raise AssertionError(
                        f"unhandled config field type: "
                        f"{section_field.name}.{leaf.name}"
                    )
                mutated = dataclasses.replace(
                    config,
                    **{
                        section_field.name: dataclasses.replace(
                            section, **{leaf.name: perturbed}
                        )
                    },
                )
                assert run_fingerprint(graph, policy, mutated) != reference, (
                    f"{section_field.name}.{leaf.name} change did not "
                    "change the fingerprint"
                )

    def test_policy_flags_invalidate(self):
        graph, _, config = _job()
        reference = run_fingerprint(graph, HeteroPimPolicy(), config)
        variants = [
            HeteroPimPolicy(recursive_kernels=False),
            HeteroPimPolicy(operation_pipeline=False),
            HeteroPimPolicy(cpu_slots=7),
            MixedWorkloadPolicy(frozenset({"lstm"})),
            MixedWorkloadPolicy(frozenset({"lstm"}), restrict_untagged=True),
            MixedWorkloadPolicy(frozenset({"word2vec"})),
        ]
        prints = [run_fingerprint(graph, p, config) for p in variants]
        assert reference not in prints
        assert len(set(prints)) == len(prints)

    def test_steps_invalidate_but_default_matches_explicit(self):
        graph, policy, config = _job()
        default = run_fingerprint(graph, policy, config)
        explicit = run_fingerprint(
            graph, policy, config, steps=config.runtime.measured_steps
        )
        assert default == explicit
        assert run_fingerprint(graph, policy, config, steps=9) != default

    def test_graph_content_invalidates(self):
        _, policy, config = _job()
        small = build_model(MODEL)
        bigger = build_model(MODEL, batch_size=small.batch_size * 2)
        assert run_fingerprint(small, policy, config) != run_fingerprint(
            bigger, policy, config
        )


class TestCacheTiers:
    def test_hit_returns_equal_result(self):
        graph, policy, config = _job()
        first = simulate_cached(graph, policy, config)
        again = simulate_cached(*_job())
        assert first == again
        stats = sim_cache.stats()
        assert stats["misses"] == 1
        assert stats["memory_hits"] + stats["disk_hits"] == 1

    def test_disk_tier_survives_memory_clear(self):
        graph, policy, config = _job()
        first = simulate_cached(graph, policy, config)
        sim_cache._memory.clear()  # simulates a new process
        sim_cache.reset_stats()
        again = simulate_cached(*_job())
        assert first == again
        assert sim_cache.stats()["disk_hits"] == 1

    def test_disk_tier_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        graph, policy, config = _job()
        simulate_cached(graph, policy, config)
        assert not (sim_cache.cache_dir() / "objects").exists()

    def test_corrupt_entry_is_a_miss(self):
        graph, policy, config = _job()
        simulate_cached(graph, policy, config)
        fp = run_fingerprint(graph, policy, config)
        path = sim_cache._object_path(fp)
        path.write_bytes(b"not valid json")
        sim_cache._memory.clear()
        assert sim_cache.get(fp) is None

    def test_clear_caches_drops_both_tiers(self):
        result = run_model_on(MODEL, "hetero-pim")
        assert result is run_model_on(MODEL, "hetero-pim")  # memory tier
        objects = sim_cache.cache_dir() / "objects"
        assert any(objects.rglob("*.json"))
        clear_caches()
        assert not sim_cache._memory
        assert not any(objects.rglob("*.json"))
        assert run_model_on(MODEL, "hetero-pim") == result  # re-simulated

    def test_modified_base_config_cached_without_collision(self):
        # the old cache_key footgun: a modified base used to either skip
        # the cache or collide; now it gets its own fingerprint entry
        base = default_config().with_frequency_scale(2.0)
        scaled = run_model_on(MODEL, "hetero-pim", base=base)
        plain = run_model_on(MODEL, "hetero-pim")
        assert scaled.step_time_s != plain.step_time_s
        assert run_model_on(MODEL, "hetero-pim", base=base) is scaled


class TestRunner:
    def test_jobs_resolution(self, monkeypatch):
        assert runner.get_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.get_jobs() == 3
        runner.set_jobs(5)
        assert runner.get_jobs() == 5
        runner.set_jobs(None)
        assert runner.get_jobs() == 3
        with pytest.raises(ValueError):
            runner.set_jobs(0)

    def test_parallel_matches_serial_and_warm_cache(self):
        jobs = []
        for config_name in ("cpu", "hetero-pim"):
            config, policy = build_configuration(config_name)
            jobs.append((build_model(MODEL), policy, config, None))

        serial = [Simulation(g, p, config=c, steps=s).run() for g, p, c, s in jobs]

        sim_cache.clear()
        runner.set_jobs(4)
        try:
            parallel = runner.run_jobs(jobs)
            warm = runner.run_jobs(jobs)
        finally:
            runner.set_jobs(None)
        sim_cache._memory.clear()
        from_disk = runner.run_jobs(jobs)

        for results in (parallel, warm, from_disk):
            assert results == serial

    def test_prefetch_warms_run_model_on(self):
        runner.prefetch_model_runs([(MODEL, "cpu")])
        sim_cache.reset_stats()
        run_model_on(MODEL, "cpu")
        assert sim_cache.stats()["misses"] == 0


class TestSchemaNamespacing:
    """Entries written by a different CACHE_SCHEMA must never be read."""

    def test_object_path_is_schema_namespaced(self):
        graph, policy, config = _job()
        fp = run_fingerprint(graph, policy, config)
        path = sim_cache._object_path(fp)
        assert f"v{sim_cache.CACHE_SCHEMA}" in path.parts

    def test_newer_schema_entry_is_invisible(self):
        graph, policy, config = _job()
        fp = run_fingerprint(graph, policy, config)
        result = simulate_cached(graph, policy, config)
        # plant the same payload under a FUTURE schema namespace: a
        # checkout running newer code left it behind
        future = (
            sim_cache.cache_dir()
            / "objects"
            / f"v{sim_cache.CACHE_SCHEMA + 1}"
            / fp[:2]
            / f"{fp}.json"
        )
        future.parent.mkdir(parents=True, exist_ok=True)
        future.write_text(result.to_json())
        sim_cache._object_path(fp).unlink()
        sim_cache._memory.clear()
        sim_cache.reset_stats()
        assert sim_cache.get(fp) is None  # never reads across namespaces
        assert sim_cache.stats()["misses"] == 1

    def test_clear_sweeps_every_namespace_and_legacy_layouts(self):
        graph, policy, config = _job()
        simulate_cached(graph, policy, config)
        objects = sim_cache.cache_dir() / "objects"
        future = objects / f"v{sim_cache.CACHE_SCHEMA + 1}" / "ab" / "x.json"
        legacy_flat = objects / "ab" / "deadbeef.json"
        legacy_pickle = objects / "ab" / "deadbeef.pkl"
        for planted in (future, legacy_flat, legacy_pickle):
            planted.parent.mkdir(parents=True, exist_ok=True)
            planted.write_text("{}")
        sim_cache.clear()
        assert not any(objects.rglob("*.json"))
        assert not any(objects.rglob("*.pkl"))
