"""Simulated device executors: slot devices and the processor-sharing pool."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.hardware.fixed_pim import FixedPIMPool
from repro.sim.devices import FixedPoolExecutor, SlotDevice
from repro.sim.engine import Engine


def make_pool(engine, units=10, pipeline=True, mac_rate=100.0, byte_rate=1000.0):
    return FixedPoolExecutor(
        engine=engine,
        pool=FixedPIMPool(units),
        mac_rate_per_unit=mac_rate,
        byte_rate_per_unit=byte_rate,
        pipeline=pipeline,
    )


class TestSlotDevice:
    def test_acquire_release(self):
        engine = Engine()
        dev = SlotDevice(engine, "cpu", 2)
        assert dev.try_acquire()
        assert dev.try_acquire()
        assert not dev.try_acquire()
        dev.release()
        assert dev.free_slots == 1

    def test_multi_slot_acquire_atomic(self):
        dev = SlotDevice(Engine(), "prog", 4)
        assert dev.try_acquire(3)
        assert not dev.try_acquire(2)
        assert dev.try_acquire(1)
        dev.release(4)
        assert dev.free_slots == 4

    def test_busy_integral(self):
        engine = Engine()
        dev = SlotDevice(engine, "cpu", 2)
        dev.try_acquire()
        engine.at(3.0, dev.release)
        engine.run()
        assert dev.busy_seconds() == pytest.approx(3.0)

    def test_over_release_rejected(self):
        dev = SlotDevice(Engine(), "cpu", 1)
        with pytest.raises(SchedulingError):
            dev.release()

    def test_zero_slots_rejected(self):
        with pytest.raises(SimulationError):
            SlotDevice(Engine(), "cpu", 0)


class TestFixedPoolExecutor:
    def test_single_job_duration(self):
        engine = Engine()
        pool = make_pool(engine, units=10, mac_rate=100.0)
        done = []
        # 1000 MACs on 10 units at 100 MAC/s/unit -> 1 second
        assert pool.try_submit("k", 1000, 0, 10, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(1.0)]

    def test_byte_bound_job(self):
        engine = Engine()
        pool = make_pool(engine, units=10, byte_rate=1000.0)
        done = []
        # 10000 bytes / (10 units x 1000 B/s) -> 1 second, despite few MACs
        pool.try_submit("k", 1, 10_000, 10, lambda: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(1.0)]

    def test_processor_sharing_expansion(self):
        engine = Engine()
        pool = make_pool(engine, units=10, mac_rate=100.0)
        done = {}
        # job A wants all 10 units: 4000 MACs
        pool.try_submit("a", 4000, 0, 10, lambda: done.setdefault("a", engine.now))
        engine.run(until=0.0)
        # nothing free for B yet
        assert not pool.try_submit("b", 100, 0, 5, lambda: done.setdefault("b", engine.now))
        engine.run()
        assert done["a"] == pytest.approx(4.0)

    def test_expansion_accelerates_running_job(self):
        engine = Engine()
        pool = make_pool(engine, units=10, mac_rate=100.0)
        done = {}
        # A gets 5 units (wants 10); B holds the other 5 briefly
        pool.try_submit("b", 250, 0, 5, lambda: done.setdefault("b", engine.now))
        pool.try_submit("a", 4000, 0, 10, lambda: done.setdefault("a", engine.now))
        engine.run()
        # B: 250/(5x100) = 0.5s. A: 5 units for 0.5s (250 done of 4000
        # normalized... then 10 units) -> finishes sooner than 8s
        assert done["b"] == pytest.approx(0.5)
        assert done["a"] < 8.0 - 1e-9
        # busy integral equals total normalized work
        assert pool.busy_unit_seconds() == pytest.approx(42.5)

    def test_no_pipeline_token_exclusivity(self):
        engine = Engine()
        pool = make_pool(engine, pipeline=False)
        assert pool.try_take_token("op1")
        assert not pool.try_take_token("op2")
        assert pool.try_take_token("op1")  # re-entrant
        pool.drop_token("op1")
        assert pool.try_take_token("op2")

    def test_no_pipeline_submit_blocked_by_token(self):
        engine = Engine()
        pool = make_pool(engine, pipeline=False)
        pool.try_take_token("op1")
        assert not pool.try_submit("op2", 100, 0, 5, lambda: None)
        assert pool.try_submit("op1", 100, 0, 5, lambda: None)

    def test_drop_foreign_token_rejected(self):
        pool = make_pool(Engine(), pipeline=False)
        pool.try_take_token("op1")
        with pytest.raises(SchedulingError):
            pool.drop_token("op2")

    def test_duty_window_utilization(self):
        engine = Engine()
        pool = make_pool(engine, units=10, mac_rate=100.0)
        pool.window_enter()
        pool.try_submit("k", 500, 0, 5, lambda: pool.window_exit())
        engine.run()
        # 5 busy units over a 1s window on a 10-unit pool
        assert pool.utilization() == pytest.approx(0.5)

    def test_window_underflow_rejected(self):
        pool = make_pool(Engine())
        with pytest.raises(SimulationError):
            pool.window_exit()

    def test_units_freed_callback(self):
        engine = Engine()
        calls = []
        pool = FixedPoolExecutor(
            engine=engine,
            pool=FixedPIMPool(4),
            mac_rate_per_unit=100.0,
            byte_rate_per_unit=100.0,
            pipeline=True,
            on_units_freed=lambda: calls.append(engine.now),
        )
        pool.try_submit("k", 100, 0, 4, lambda: None)
        engine.run()
        assert calls  # fired at completion
