"""Discrete-event engine and activity tracker."""

import pytest

from repro.errors import SimulationError
from repro.sim.activity import COMPUTE, DATA_MOVEMENT, SYNC, ActivityTracker
from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.at(2.0, lambda: log.append("b"))
        engine.at(1.0, lambda: log.append("a"))
        engine.at(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_fire_in_schedule_order(self):
        engine = Engine()
        log = []
        engine.at(1.0, lambda: log.append("first"))
        engine.at(1.0, lambda: log.append("second"))
        engine.run()
        assert log == ["first", "second"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.at(5.0, lambda: engine.after(2.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [7.0]

    def test_cancellation(self):
        engine = Engine()
        log = []
        handle = engine.at(1.0, lambda: log.append("x"))
        handle.cancel()
        engine.run()
        assert log == []
        assert handle.cancelled

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().after(-1.0, lambda: None)

    def test_run_until(self):
        engine = Engine()
        log = []
        engine.at(1.0, lambda: log.append(1))
        engine.at(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_event_budget_guards_livelock(self):
        engine = Engine()

        def rearm():
            engine.after(0.0, rearm)

        engine.after(0.0, rearm)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_cancel_one_of_tied_events(self):
        # cancellation must not disturb the (time, seq) order of survivors
        engine = Engine()
        log = []
        engine.at(1.0, lambda: log.append("a"))
        b = engine.at(1.0, lambda: log.append("b"))
        engine.at(1.0, lambda: log.append("c"))
        b.cancel()
        engine.run()
        assert log == ["a", "c"]

    def test_cancel_from_callback_of_tied_event(self):
        # a callback may cancel an event scheduled for the same instant
        engine = Engine()
        log = []
        later = engine.at(1.0, lambda: log.append("late"))
        engine.at(1.0, lambda: later.cancel())  # fires first? no: seq order
        engine.run()
        # "late" was scheduled first, so it fires before the canceller
        assert log == ["late"]

        engine2 = Engine()
        log2 = []
        victim = [None]
        engine2.at(1.0, lambda: victim[0].cancel())
        victim[0] = engine2.at(1.0, lambda: log2.append("late"))
        engine2.run()
        assert log2 == []

    def test_cancel_and_reschedule(self):
        # the fixed-pool executor's pattern: cancel a completion, schedule
        # a new one at a different time
        engine = Engine()
        log = []
        handle = engine.at(5.0, lambda: log.append("old"))
        assert handle.time == 5.0
        handle.cancel()
        engine.at(3.0, lambda: log.append("new"))
        engine.run()
        assert log == ["new"]
        assert engine.now == 3.0

    def test_double_cancel_is_safe(self):
        engine = Engine()
        handle = engine.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        engine.run()

    def test_cancelled_events_not_processed_or_pending(self):
        engine = Engine()
        engine.at(1.0, lambda: None)
        cancelled = engine.at(2.0, lambda: None)
        cancelled.cancel()
        assert engine.pending_events == 1
        engine.run()
        assert engine.events_processed == 1

    def test_none_callback_rejected(self):
        with pytest.raises(SimulationError):
            Engine().at(1.0, None)

    def test_interleaved_schedule_cancel_ordering(self):
        # stress the list-entry heap: many ties, alternating cancellations
        engine = Engine()
        log = []
        handles = [
            engine.at(1.0, (lambda i=i: log.append(i))) for i in range(10)
        ]
        for i in range(0, 10, 2):
            handles[i].cancel()
        engine.run()
        assert log == [1, 3, 5, 7, 9]


class TestActivityTracker:
    def test_single_activity_buckets(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 2.0)
        b = t.breakdown(2.0)
        assert b.operation_s == pytest.approx(2.0)
        assert b.data_movement_s == 0.0

    def test_priority_compute_over_dm_over_sync(self):
        t = ActivityTracker()
        t.begin(SYNC, 0.0)
        t.begin(DATA_MOVEMENT, 1.0)
        t.begin(COMPUTE, 2.0)
        t.end(COMPUTE, 3.0)
        t.end(DATA_MOVEMENT, 4.0)
        t.end(SYNC, 5.0)
        b = t.breakdown(5.0)
        assert b.sync_s == pytest.approx(2.0)         # [0,1) and [4,5)
        assert b.data_movement_s == pytest.approx(2.0)  # [1,2) and [3,4)
        assert b.operation_s == pytest.approx(1.0)    # [2,3)

    def test_idle_after_start_counts_as_sync(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 1.0)
        b = t.breakdown(3.0)  # 2s dependency stall at the end
        assert b.sync_s == pytest.approx(2.0)

    def test_leading_idle_not_counted(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 5.0)
        t.end(COMPUTE, 6.0)
        b = t.breakdown(6.0)
        assert b.total_s == pytest.approx(1.0)

    def test_unbalanced_end_rejected(self):
        t = ActivityTracker()
        with pytest.raises(SimulationError):
            t.end(COMPUTE, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            ActivityTracker().begin("gossip", 0.0)

    def test_time_backwards_rejected(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 5.0)
        with pytest.raises(SimulationError):
            t.end(COMPUTE, 4.0)

    def test_breakdown_scaling(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 4.0)
        b = t.breakdown(4.0).scaled(0.25)
        assert b.operation_s == pytest.approx(1.0)
