"""Discrete-event engine and activity tracker."""

import pytest

from repro.errors import SimulationError
from repro.sim.activity import COMPUTE, DATA_MOVEMENT, SYNC, ActivityTracker
from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.at(2.0, lambda: log.append("b"))
        engine.at(1.0, lambda: log.append("a"))
        engine.at(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_fire_in_schedule_order(self):
        engine = Engine()
        log = []
        engine.at(1.0, lambda: log.append("first"))
        engine.at(1.0, lambda: log.append("second"))
        engine.run()
        assert log == ["first", "second"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.at(5.0, lambda: engine.after(2.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [7.0]

    def test_cancellation(self):
        engine = Engine()
        log = []
        handle = engine.at(1.0, lambda: log.append("x"))
        handle.cancel()
        engine.run()
        assert log == []
        assert handle.cancelled

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().after(-1.0, lambda: None)

    def test_run_until(self):
        engine = Engine()
        log = []
        engine.at(1.0, lambda: log.append(1))
        engine.at(10.0, lambda: log.append(10))
        engine.run(until=5.0)
        assert log == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_event_budget_guards_livelock(self):
        engine = Engine()

        def rearm():
            engine.after(0.0, rearm)

        engine.after(0.0, rearm)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestActivityTracker:
    def test_single_activity_buckets(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 2.0)
        b = t.breakdown(2.0)
        assert b.operation_s == pytest.approx(2.0)
        assert b.data_movement_s == 0.0

    def test_priority_compute_over_dm_over_sync(self):
        t = ActivityTracker()
        t.begin(SYNC, 0.0)
        t.begin(DATA_MOVEMENT, 1.0)
        t.begin(COMPUTE, 2.0)
        t.end(COMPUTE, 3.0)
        t.end(DATA_MOVEMENT, 4.0)
        t.end(SYNC, 5.0)
        b = t.breakdown(5.0)
        assert b.sync_s == pytest.approx(2.0)         # [0,1) and [4,5)
        assert b.data_movement_s == pytest.approx(2.0)  # [1,2) and [3,4)
        assert b.operation_s == pytest.approx(1.0)    # [2,3)

    def test_idle_after_start_counts_as_sync(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 1.0)
        b = t.breakdown(3.0)  # 2s dependency stall at the end
        assert b.sync_s == pytest.approx(2.0)

    def test_leading_idle_not_counted(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 5.0)
        t.end(COMPUTE, 6.0)
        b = t.breakdown(6.0)
        assert b.total_s == pytest.approx(1.0)

    def test_unbalanced_end_rejected(self):
        t = ActivityTracker()
        with pytest.raises(SimulationError):
            t.end(COMPUTE, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            ActivityTracker().begin("gossip", 0.0)

    def test_time_backwards_rejected(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 5.0)
        with pytest.raises(SimulationError):
            t.end(COMPUTE, 4.0)

    def test_breakdown_scaling(self):
        t = ActivityTracker()
        t.begin(COMPUTE, 0.0)
        t.end(COMPUTE, 4.0)
        b = t.breakdown(4.0).scaled(0.25)
        assert b.operation_s == pytest.approx(1.0)
