"""End-to-end simulation behavior across policies."""

import pytest

from repro.baselines import build_configuration, make_neurocube
from repro.config import default_config
from repro.nn.models import build_model
from repro.runtime.scheduler import HeteroPimPolicy
from repro.sim.simulation import Simulation


@pytest.fixture(scope="module")
def alexnet():
    return build_model("alexnet")


@pytest.fixture(scope="module")
def dcgan():
    return build_model("dcgan")


@pytest.fixture(scope="module")
def results(alexnet):
    out = {}
    for name in ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim"):
        cfg, pol = build_configuration(name)
        out[name] = Simulation(alexnet, pol, config=cfg).run()
    return out


class TestBasics:
    def test_all_tasks_complete(self, results):
        for r in results.values():
            assert r.makespan_s > 0
            assert r.events_processed > 0

    def test_step_time_positive_and_below_makespan(self, results):
        for r in results.values():
            assert 0 < r.step_time_s <= r.makespan_s

    def test_breakdown_sums_to_makespan(self, results):
        for r in results.values():
            assert r.breakdown.total_s == pytest.approx(r.makespan_s, rel=1e-6)

    def test_single_step_run(self, alexnet):
        cfg, pol = build_configuration("cpu")
        r = Simulation(alexnet, pol, config=cfg, steps=1).run()
        assert r.steps == 1
        assert r.step_time_s == pytest.approx(r.makespan_s)

    def test_zero_steps_rejected(self, alexnet):
        cfg, pol = build_configuration("cpu")
        with pytest.raises(Exception):
            Simulation(alexnet, pol, cfg, steps=0)


class TestCpuBaseline:
    def test_cpu_time_matches_profile_sum(self, alexnet, results):
        """Sequential CPU execution ~= the profiled per-op total."""
        from repro.profiling import WorkloadProfiler

        profile = WorkloadProfiler().profile(alexnet)
        assert results["cpu"].step_time_s == pytest.approx(
            profile.step_time_s, rel=0.01
        )

    def test_cpu_uses_no_pim(self, results):
        r = results["cpu"]
        assert r.usage.fixed_unit_busy_s == 0.0
        assert r.usage.prog_busy_s == 0.0
        assert r.usage.internal_bytes == 0.0


class TestGpuBaseline:
    def test_gpu_moves_minibatch_over_pcie(self, results):
        assert results["gpu"].usage.gpu_bytes > 0
        assert results["gpu"].usage.external_bytes > 0  # staging

    def test_gpu_much_faster_than_cpu(self, results):
        assert results["cpu"].step_time_s > 5 * results["gpu"].step_time_s


class TestHeteroPim:
    def test_uses_all_three_compute_resources(self, results):
        r = results["hetero-pim"]
        assert r.usage.fixed_unit_busy_s > 0
        assert r.usage.prog_busy_s > 0
        assert r.usage.internal_bytes > 0

    def test_pool_executes_the_mac_work(self, alexnet, results):
        # nearly all MACs should run in-memory: busy unit-seconds x rate
        cfg = default_config()
        rate = cfg.fixed_pim.simd_width * cfg.pim_frequency_hz
        pool_macs = results["hetero-pim"].usage.fixed_unit_busy_s * rate
        graph_macs = alexnet.total_cost().macs * results["hetero-pim"].steps
        assert pool_macs > 0.5 * graph_macs

    def test_utilization_in_unit_range(self, results):
        assert 0.0 < results["hetero-pim"].fixed_pim_utilization <= 1.0

    def test_faster_than_all_pim_baselines(self, results):
        hetero = results["hetero-pim"].step_time_s
        assert results["prog-pim"].step_time_s > hetero
        assert results["fixed-pim"].step_time_s > hetero

    def test_selection_was_prepared(self, alexnet):
        cfg, pol = build_configuration("hetero-pim")
        Simulation(alexnet, pol, config=cfg).run()
        assert pol.selection is not None
        assert pol.selection.time_coverage >= cfg.runtime.offload_coverage

    def test_placements_require_prepare(self, alexnet):
        policy = HeteroPimPolicy()
        with pytest.raises(RuntimeError):
            policy.placements(alexnet.ops[0])


class TestFrequencyScaling:
    def test_higher_frequency_is_faster(self, alexnet):
        times = []
        for scale in (1.0, 2.0, 4.0):
            cfg, pol = build_configuration(
                "hetero-pim", default_config().with_frequency_scale(scale)
            )
            times.append(Simulation(alexnet, pol, config=cfg).run().step_time_s)
        assert times[0] > times[1] > times[2]

    def test_scaling_is_sublinear(self, alexnet):
        """Host-side work and launches do not scale with the PIM clock."""
        cfg1, pol1 = build_configuration("hetero-pim")
        cfg4, pol4 = build_configuration(
            "hetero-pim", default_config().with_frequency_scale(4.0)
        )
        t1 = Simulation(alexnet, pol1, config=cfg1).run().step_time_s
        t4 = Simulation(alexnet, pol4, config=cfg4).run().step_time_s
        assert t1 / t4 < 4.0


class TestNeurocube:
    def test_neurocube_between_cpu_and_hetero(self, alexnet, results):
        cfg, pol = make_neurocube()
        r = Simulation(alexnet, pol, config=cfg).run()
        assert results["hetero-pim"].step_time_s < r.step_time_s
        assert r.step_time_s < results["cpu"].step_time_s


class TestRcOpAblation:
    def test_rc_op_improves_time_and_utilization(self, dcgan):
        from repro.baselines import make_hetero_pim

        cfg_off, pol_off = make_hetero_pim(
            default_config(), recursive_kernels=False, operation_pipeline=False
        )
        cfg_on, pol_on = make_hetero_pim(default_config())
        off = Simulation(dcgan, pol_off, config=cfg_off).run()
        on = Simulation(dcgan, pol_on, config=cfg_on).run()
        assert on.step_time_s < off.step_time_s
        assert on.fixed_pim_utilization > off.fixed_pim_utilization

    def test_policy_names_reflect_variants(self):
        from repro.baselines import make_hetero_pim

        _, p = make_hetero_pim(default_config(), recursive_kernels=False,
                               operation_pipeline=False)
        assert "no RC/OP" in p.name
        _, p = make_hetero_pim(default_config())
        assert p.name == "Hetero PIM"
