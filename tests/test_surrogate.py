"""The learned cost surrogate: training, bands, fallback, CLI contract.

Every test runs against a private ``REPRO_CACHE_DIR`` so the developer's
warm cache is never read or written; exact results are simulated fresh
into the temporary cache and the surrogate is trained from them, which is
the exact workflow ``repro surrogate train`` promises.
"""

import pytest

from repro import api, cli
from repro.experiments.common import run_model_on, set_surrogate
from repro.faults import FaultSpec
from repro.sim import cache as sim_cache
from repro.surrogate import (
    SurrogateUnavailable,
    estimate_run,
    evaluate_from_cache,
    load_model,
    train_from_cache,
)
from repro.surrogate.model import TARGETS

#: Small explicit training grid: two fast models across the evaluated
#: systems gives every calibration tier multi-row coverage.
GRID = tuple(
    (model, config)
    for model in ("alexnet", "dcgan")
    for config in ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")
)


@pytest.fixture()
def private_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    sim_cache.clear(disk=False)  # memory tier would leak warm results in
    yield
    sim_cache.clear(disk=False)


def _warm(grid=GRID):
    set_surrogate(False)
    for model, config in grid:
        run_model_on(model, config)


class TestTraining:
    def test_empty_cache_is_a_friendly_error(self, private_cache):
        with pytest.raises(SurrogateUnavailable) as err:
            train_from_cache(grid=GRID)
        assert "warm the cache" in str(err.value)

    def test_missing_model_is_a_friendly_error(self, private_cache):
        with pytest.raises(SurrogateUnavailable) as err:
            load_model()
        assert "repro surrogate train" in str(err.value)

    def test_train_then_eval_all_points_within_declared_bands(
        self, private_cache
    ):
        _warm()
        model, misses = train_from_cache(grid=GRID)
        assert misses == []
        assert model.rows == len(GRID)
        outcome = evaluate_from_cache(model=model, grid=GRID)
        assert outcome["rows"] == len(GRID)
        for point in outcome["points"]:
            for target in TARGETS:
                record = point[target]
                # the declared band is a promise: an error above it on a
                # trained point is a model bug, not noise
                assert record["rel_error"] <= record["band_rel"], (
                    point["point"],
                    target,
                    record,
                )
        for target, agg in outcome["aggregate"].items():
            assert agg["within_band"], (target, agg)

    def test_estimate_matches_exact_within_band(self, private_cache):
        _warm()
        model, _ = train_from_cache(grid=GRID)
        graph = api.cached_graph("alexnet")
        system, policy = api.resolve_configuration("hetero-pim")
        exact = sim_cache.simulate_cached(graph, policy, system)
        system2, policy2 = api.resolve_configuration("hetero-pim")
        est = estimate_run(graph, policy2, system2, model=model)
        band = model.band_rel("step_time_s")
        rel = abs(est.step_time_s - exact.step_time_s) / exact.step_time_s
        assert rel <= band
        assert est.metrics["surrogate.estimated"] == 1.0
        assert est.steps == exact.steps


class TestFallback:
    def test_api_simulate_falls_back_without_a_model(self, private_cache):
        report = api.simulate("alexnet", "cpu", steps=1, surrogate=True)
        assert report.surrogate is not None
        assert report.surrogate["mode"] == "exact"
        assert "surrogate train" in report.surrogate["reason"]
        # the fallback is a real simulation
        assert report.result.events_processed > 0

    def test_api_simulate_estimates_and_never_caches(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        # a configuration deliberately outside the exact-warmed grid
        report = api.simulate("alexnet", "neurocube", steps=2, surrogate=True)
        assert report.surrogate["mode"] == "surrogate"
        bands = report.surrogate["bands"]
        assert all(b > 0 for b in bands.values())
        assert report.metrics["surrogate.estimated"] == 1.0
        # estimates must never be written to the result cache
        graph = api.cached_graph("alexnet")
        system, policy = api.resolve_configuration("neurocube")
        fp = sim_cache.run_fingerprint(graph, policy, system, 2)
        assert sim_cache.get(fp) is None

    def test_fault_queries_fall_back_to_exact(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        spec = FaultSpec.generate(seed=7, horizon_s=0.05, n_events=1)
        report = api.simulate(
            "alexnet", "fixed-pim", steps=1, surrogate=True, faults=spec
        )
        assert report.surrogate["mode"] == "exact"
        assert "trained domain" in report.surrogate["reason"]
        assert report.result.faults is not None

    def test_observe_forces_exact(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        report = api.simulate(
            "alexnet", "cpu", steps=1, surrogate=True, observe=True
        )
        assert report.surrogate["mode"] == "exact"
        assert report.has_timeline

    def test_surrogate_off_is_untouched(self, private_cache):
        report = api.simulate("alexnet", "cpu", steps=1)
        assert report.surrogate is None


class TestFamilyGuard:
    """Regression: a CNN-only-trained surrogate must not let the
    global-tier correction silently extrapolate onto a new workload
    family — the query falls back to exact with a surfaced reason."""

    def test_trained_calibration_names_recovers_the_grid(
        self, private_cache
    ):
        _warm()
        model, _ = train_from_cache(grid=GRID)
        assert model.trained_calibration_names() == ("alexnet", "dcgan")

    def test_estimate_run_raises_for_untrained_family(self, private_cache):
        _warm()
        model, _ = train_from_cache(grid=GRID)
        graph = api.cached_graph("transformer")
        system, policy = api.resolve_configuration("hetero-pim")
        with pytest.raises(SurrogateUnavailable) as err:
            estimate_run(graph, policy, system, model=model)
        assert "transformer" in str(err.value)
        assert "cnn" in str(err.value)

    def test_api_simulate_surfaces_the_fallback_reason(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        report = api.simulate(
            "gnn", "hetero-pim", steps=1, surrogate=True
        )
        assert report.surrogate["mode"] == "exact"
        assert "trained domain" in report.surrogate["reason"]
        assert "gnn" in report.surrogate["reason"]
        # the fallback is a real simulation, not an extrapolation
        assert report.result.events_processed > 0

    def test_training_on_the_family_lifts_the_guard(self, private_cache):
        grid = GRID + tuple(
            ("gnn", config) for config in ("cpu", "gpu", "hetero-pim")
        )
        _warm(grid)
        model, misses = train_from_cache(grid=grid)
        assert misses == []
        graph = api.cached_graph("gnn")
        system, policy = api.resolve_configuration("hetero-pim")
        est = estimate_run(graph, policy, system, model=model)
        assert est.metrics["surrogate.estimated"] == 1.0


class TestExperimentMode:
    def test_run_model_on_estimates_in_surrogate_mode(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        prior = set_surrogate(True)
        try:
            est = run_model_on("alexnet", "hetero-pim")
        finally:
            set_surrogate(prior)
        assert est.metrics["surrogate.estimated"] == 1.0
        exact = run_model_on("alexnet", "hetero-pim")
        assert "surrogate.estimated" not in (exact.metrics or {})
        band = load_model().band_rel("step_time_s")
        rel = abs(est.step_time_s - exact.step_time_s) / exact.step_time_s
        assert rel <= band


class TestCli:
    def test_train_without_cache_exits_one_with_one_line(
        self, private_cache, capsys
    ):
        rc = cli.main(["surrogate", "train"])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_eval_without_model_exits_one(self, private_cache, capsys):
        rc = cli.main(["surrogate", "eval"])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error: ")


class TestReportEnvelope:
    def test_surrogate_field_round_trips(self, private_cache):
        _warm()
        train_from_cache(grid=GRID)
        report = api.simulate("alexnet", "hetero-pim", steps=1, surrogate=True)
        assert report.surrogate["mode"] == "surrogate"
        from repro.obs.report import RunReport

        again = RunReport.from_json(report.to_json())
        assert again.surrogate == report.surrogate
