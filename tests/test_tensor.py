"""TensorSpec and shape-inference helpers."""

import pytest

from repro.errors import ShapeError
from repro.nn.tensor import TensorSpec, conv_output_hw, deconv_output_hw


class TestTensorSpec:
    def test_basic_properties(self):
        t = TensorSpec("x", (32, 224, 224, 3))
        assert t.num_elements == 32 * 224 * 224 * 3
        assert t.nbytes == t.num_elements * 4
        assert t.rank == 4

    def test_scalar(self):
        t = TensorSpec("s", ())
        assert t.num_elements == 1
        assert t.nbytes == 4

    def test_with_name(self):
        t = TensorSpec("x", (2, 3))
        renamed = t.with_name("y")
        assert renamed.name == "y"
        assert renamed.shape == t.shape

    def test_rejects_empty_name(self):
        with pytest.raises(ShapeError):
            TensorSpec("", (1,))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (4, 0))
        with pytest.raises(ShapeError):
            TensorSpec("x", (-1,))

    def test_rejects_bad_dtype(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (1,), dtype_bytes=0)


class TestConvShapes:
    def test_same_padding_stride1(self):
        assert conv_output_hw(224, 224, (3, 3), (1, 1), "SAME") == (224, 224)

    def test_same_padding_stride2(self):
        assert conv_output_hw(224, 224, (3, 3), (2, 2), "SAME") == (112, 112)
        assert conv_output_hw(7, 7, (3, 3), (2, 2), "SAME") == (4, 4)

    def test_valid_padding(self):
        # AlexNet conv1: 224x224, 11x11 filter, stride 4
        assert conv_output_hw(224, 224, (11, 11), (4, 4), "VALID") == (54, 54)
        assert conv_output_hw(5, 5, (5, 5), (1, 1), "VALID") == (1, 1)

    def test_valid_rejects_kernel_larger_than_input(self):
        with pytest.raises(ShapeError):
            conv_output_hw(2, 2, (3, 3), (1, 1), "VALID")

    def test_rejects_bad_stride(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 8, (3, 3), (0, 1), "SAME")

    def test_rejects_unknown_padding(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 8, (3, 3), (1, 1), "WEIRD")

    def test_deconv_doubles_spatial_size(self):
        assert deconv_output_hw(7, 7, (2, 2)) == (14, 14)

    def test_deconv_rejects_valid_padding(self):
        with pytest.raises(ShapeError):
            deconv_output_hw(7, 7, (2, 2), padding="VALID")
