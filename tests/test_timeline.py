"""Schedule timeline recording and validation."""

import pytest

from repro.baselines import build_configuration
from repro.errors import SimulationError
from repro.nn.models import build_model
from repro.sim.simulation import Simulation
from repro.sim.timeline import Timeline, TimelineEntry, validate_schedule


def entry(uid, device, start, end, step=0, op_type="MatMul"):
    return TimelineEntry(
        uid=uid, op_type=op_type, device=device, step=step,
        start_s=start, end_s=end,
    )


class TestTimelineBasics:
    def test_entry_duration(self):
        e = entry("a", "cpu", 1.0, 3.0)
        assert e.duration_s == 2.0

    def test_entry_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            entry("a", "cpu", 3.0, 1.0)

    def test_device_and_step_filters(self):
        tl = Timeline()
        tl.add(entry("a", "cpu", 0, 1, step=0))
        tl.add(entry("b", "fixed", 0, 2, step=1))
        assert len(tl.on_device("cpu")) == 1
        assert len(tl.for_step(1)) == 1
        assert tl.makespan_s == 2.0
        assert tl.device_busy_s("fixed") == 2.0

    def test_concurrency_profile(self):
        tl = Timeline()
        tl.add(entry("a", "cpu", 0, 2))
        tl.add(entry("b", "cpu", 1, 3))
        tl.add(entry("c", "cpu", 2.5, 4))
        assert tl.concurrency_profile("cpu") == 2

    def test_render_empty(self):
        assert Timeline().render() == "(empty timeline)"

    def test_render_contains_devices(self):
        tl = Timeline()
        tl.add(entry("a", "cpu", 0, 1))
        tl.add(entry("b", "fixed", 0, 1, op_type="Conv2D"))
        out = tl.render(width=40)
        assert "[cpu]" in out and "[fixed]" in out


class TestValidateSchedule:
    def test_capacity_respected(self):
        tl = Timeline()
        tl.add(entry("a", "cpu", 0, 2))
        tl.add(entry("b", "cpu", 1, 3))
        validate_schedule(tl, {"cpu": 2})  # no raise
        with pytest.raises(SimulationError):
            validate_schedule(tl, {"cpu": 1})


class TestRecordedSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        cfg, pol = build_configuration("hetero-pim")
        sim = Simulation(
            build_model("dcgan"), pol, cfg, record_timeline=True
        )
        sim.run()
        return sim

    def test_every_task_recorded(self, sim):
        assert len(sim.timeline.entries) == len(sim._tasks)

    def test_intervals_within_makespan(self, sim):
        for e in sim.timeline.entries:
            assert 0.0 <= e.start_s <= e.end_s <= sim.engine.now + 1e-9

    def test_hetero_uses_all_devices(self, sim):
        devices = {e.device for e in sim.timeline.entries}
        assert {"cpu", "prog", "fixed"} <= devices

    def test_dependences_respected_in_schedule(self, sim):
        ends = {e.uid: e.end_s for e in sim.timeline.entries}
        starts = {e.uid: e.start_s for e in sim.timeline.entries}
        for task in sim._tasks.values():
            if task.spec is None:
                continue
            for dep in task.spec.deps:
                assert ends[dep] <= starts[task.uid] + 1e-9, (
                    f"{task.uid} started before its dependence {dep} finished"
                )

    def test_cpu_capacity_respected(self, sim):
        from repro.sim.timeline import validate_schedule

        # CPU whole-op tasks never exceed the slot count (complex phases of
        # hybrid kernels are tracked under "fixed")
        cpu_only = Timeline()
        for e in sim.timeline.entries:
            if e.device == "cpu":
                cpu_only.add(e)
        validate_schedule(cpu_only, {"cpu": sim.policy.cpu_slots})

    def test_disabled_by_default(self):
        cfg, pol = build_configuration("cpu")
        sim = Simulation(build_model("dcgan"), pol, cfg)
        sim.run()
        assert sim.timeline is None
