"""Trace export/import round trip."""

import json

import pytest

from repro.errors import SimulationError
from repro.nn.models import build_model
from repro.sim.trace_io import export_trace, import_trace, trace_summary
from repro.sim.tracegen import generate_trace


@pytest.fixture(scope="module")
def dcgan():
    return build_model("dcgan")


class TestRoundTrip:
    def test_export_reports_count(self, dcgan, tmp_path):
        path = tmp_path / "trace.json"
        n = export_trace(dcgan, steps=2, path=path)
        assert n == 2 * dcgan.num_ops
        assert path.exists()

    def test_summary(self, dcgan, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(dcgan, steps=2, path=path)
        summary = trace_summary(path)
        assert summary["model"] == "dcgan"
        assert summary["steps"] == 2
        assert summary["tasks"] == 2 * dcgan.num_ops

    def test_import_reconstructs_tasks(self, dcgan, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(dcgan, steps=2, path=path)
        original = generate_trace(dcgan, steps=2)
        loaded = import_trace(path)
        assert len(loaded) == len(original)
        by_uid = {t.uid: t for t in loaded}
        for orig in original:
            got = by_uid[orig.uid]
            assert got.deps == orig.deps
            assert got.step == orig.step
            assert got.op.op_type == orig.op.op_type
            assert got.op.cost == orig.op.cost
            assert got.topo_index == orig.topo_index

    def test_imported_kernels_are_shared_per_op(self, dcgan, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(dcgan, steps=2, path=path)
        loaded = import_trace(path)
        by_name = {}
        for t in loaded:
            by_name.setdefault(t.op.name, t.kernel)
            assert t.kernel is by_name[t.op.name]

    def test_attrs_preserved(self, dcgan, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(dcgan, steps=1, path=path)
        loaded = {t.op.name: t.op for t in import_trace(path)}
        for op in dcgan.ops:
            got = loaded[op.name]
            assert tuple(got.attrs.get("params_read", ())) == tuple(
                op.attrs.get("params_read", ())
            )

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "tasks": []}))
        with pytest.raises(SimulationError):
            import_trace(path)
