"""Trace generation: task unrolling and cross-step dependences."""

import pytest

from repro.errors import SimulationError
from repro.nn.models import build_model
from repro.sim.tracegen import (
    compile_kernels,
    generate_trace,
    task_uid,
    trace_stats,
)


@pytest.fixture(scope="module")
def alexnet():
    return build_model("alexnet")


class TestTraceGeneration:
    def test_task_count(self, alexnet):
        tasks = generate_trace(alexnet, steps=3)
        assert len(tasks) == 3 * alexnet.num_ops

    def test_zero_steps_rejected(self, alexnet):
        with pytest.raises(SimulationError):
            generate_trace(alexnet, steps=0)

    def test_intra_step_deps_match_graph(self, alexnet):
        tasks = {t.uid: t for t in generate_trace(alexnet, steps=1)}
        for op in alexnet.ops:
            expected = {task_uid(0, p) for p in alexnet.predecessors(op.name)}
            assert tasks[task_uid(0, op.name)].deps == expected

    def test_cross_step_param_deps(self, alexnet):
        tasks = {t.uid: t for t in generate_trace(alexnet, steps=2)}
        # step-1 conv1 reads conv1/weights, updated by step-0 Adam
        conv1 = tasks[task_uid(1, "conv1/Conv2D")]
        update = alexnet.param_update_op("conv1/weights")
        assert task_uid(0, update) in conv1.deps
        # step-0 conv1 has no such dependence
        conv1_s0 = tasks[task_uid(0, "conv1/Conv2D")]
        assert all(d.startswith("s0/") for d in conv1_s0.deps)

    def test_optimizer_updates_serialize_across_steps(self, alexnet):
        tasks = {t.uid: t for t in generate_trace(alexnet, steps=2)}
        update = alexnet.param_update_op("conv1/weights")
        assert task_uid(0, update) in tasks[task_uid(1, update)].deps

    def test_sort_key_orders_by_step_then_topo(self, alexnet):
        tasks = generate_trace(alexnet, steps=2)
        keys = [t.sort_key for t in tasks]
        assert keys == sorted(keys)

    def test_stats(self, alexnet):
        tasks = generate_trace(alexnet, steps=2)
        stats = trace_stats(tasks)
        assert stats["tasks"] == 2 * alexnet.num_ops
        assert stats["steps"] == 2
        assert stats["cross_step_edges"] > 0


class TestKernelCompilation:
    def test_every_op_gets_a_kernel(self, alexnet):
        kernels = compile_kernels(alexnet)
        assert set(kernels) == {op.name for op in alexnet.ops}

    def test_trace_reuses_supplied_kernels(self, alexnet):
        kernels = compile_kernels(alexnet)
        tasks = generate_trace(alexnet, steps=2, kernels=kernels)
        for t in tasks:
            assert t.kernel is kernels[t.op.name]
