"""Units helpers and system-configuration invariants."""

import re
from pathlib import Path

import pytest

from repro.config import (
    FREQUENCY_SCALES,
    PROG_PIM_COUNTS,
    SystemConfig,
    default_config,
)
from repro.errors import HardwareConfigError
from repro.units import (
    GB,
    GB_S,
    GHZ,
    KB,
    KB_S,
    MB,
    MB_S,
    MHZ,
    TB,
    seconds_per_cycle,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestUnits:
    def test_frequency_constants(self):
        assert GHZ == 1e9
        assert MHZ == 1e6

    def test_sizes_are_binary_bandwidths_decimal(self):
        # the module docstring's convention, spelled out
        assert (KB, MB, GB, TB) == (1024, 1024**2, 1024**3, 1024**4)
        assert (KB_S, MB_S, GB_S) == (1e3, 1e6, 1e9)
        # the ~7% gap the convention exists to guard
        assert GB / GB_S == pytest.approx(1.0737, abs=1e-3)

    def test_no_raw_binary_exponents_outside_units_module(self):
        """Lint: spell sizes with KB/MB/GB/TB, not 1024**n or 1 << 10n.

        A raw exponent is where decimal/binary mixups hide; units.py is
        the single place allowed to define them.
        """
        raw = re.compile(r"1024\s*\*\*|<<\s*[123]0\b")
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "units.py":
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if raw.search(line.split("#", 1)[0]):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}")
        assert not offenders, (
            "raw binary size exponents (use repro.units constants): "
            + ", ".join(offenders)
        )

    def test_seconds_per_cycle(self):
        assert seconds_per_cycle(1 * GHZ) == pytest.approx(1e-9)

    def test_seconds_per_cycle_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            seconds_per_cycle(0)
        with pytest.raises(ValueError):
            seconds_per_cycle(-1 * GHZ)


class TestSystemConfig:
    def test_paper_structural_constants(self):
        cfg = default_config()
        assert cfg.fixed_pim.n_units == 444
        assert cfg.stack.banks == 32
        assert cfg.stack.base_frequency_hz == pytest.approx(312.5 * MHZ)
        assert cfg.prog_pim.cores_per_pim == 4
        assert cfg.prog_pim.frequency_hz == pytest.approx(2 * GHZ)
        assert cfg.runtime.offload_coverage == pytest.approx(0.90)

    def test_frequency_scaling_points(self):
        assert FREQUENCY_SCALES == (1.0, 2.0, 4.0)
        assert PROG_PIM_COUNTS == (1, 4, 16)

    def test_with_frequency_scale(self):
        cfg = default_config().with_frequency_scale(4.0)
        assert cfg.pim_frequency_hz == pytest.approx(4 * 312.5 * MHZ)
        # DRAM-array bandwidth does NOT follow the logic PLL
        assert cfg.stack.bandwidth == pytest.approx(
            default_config().stack.internal_bandwidth
        )
        # the programmable PIM shares the PLL
        assert cfg.prog_pim_frequency_hz == pytest.approx(8 * GHZ)

    def test_with_frequency_scale_rejects_nonpositive(self):
        with pytest.raises(HardwareConfigError):
            default_config().with_frequency_scale(0.0)

    def test_with_prog_pims_trades_fixed_units(self):
        base = default_config()
        cfg = base.with_prog_pims(16, area_trade_units=8)
        assert cfg.prog_pim.n_pims == 16
        assert cfg.fixed_pim.n_units == base.fixed_pim.n_units - 15 * 8

    def test_with_prog_pims_one_is_identity(self):
        base = default_config()
        cfg = base.with_prog_pims(1)
        assert cfg.fixed_pim.n_units == base.fixed_pim.n_units

    def test_with_prog_pims_rejects_displacing_everything(self):
        with pytest.raises(HardwareConfigError):
            default_config().with_prog_pims(100, area_trade_units=8)

    def test_with_prog_pims_rejects_zero(self):
        with pytest.raises(HardwareConfigError):
            default_config().with_prog_pims(0)

    def test_fixed_pool_rate_scales_with_units_and_frequency(self):
        cfg = default_config()
        full = cfg.fixed_pool_macs_per_second()
        half = cfg.fixed_pool_macs_per_second(cfg.fixed_pim.n_units // 2)
        assert full > half
        fast = cfg.with_frequency_scale(2.0)
        assert fast.fixed_pool_macs_per_second() == pytest.approx(2 * full)

    def test_fixed_pool_rate_rejects_over_allocation(self):
        cfg = default_config()
        with pytest.raises(HardwareConfigError):
            cfg.fixed_pim.macs_per_second(cfg.pim_frequency_hz, 445)

    def test_gpu_utilization_lookup(self):
        cfg = default_config()
        assert cfg.gpu.utilization_for("vgg-19") == pytest.approx(0.63)
        assert cfg.gpu.utilization_for("unknown-model") == pytest.approx(
            cfg.gpu.utilization["default"]
        )

    def test_configs_are_immutable(self):
        cfg = default_config()
        with pytest.raises(AttributeError):
            cfg.cpu.cores = 16  # type: ignore[misc]
