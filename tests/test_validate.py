"""Validation layer: invariant checker and paper-fidelity gate.

Two families of tests:

* every invariant class **passes** on genuine simulator output (including
  property-based sweeps over random model/config/fault-seed combinations),
  and
* every invariant class **fires** on a deliberately corrupted result or
  simulation — a checker that never trips is indistinguishable from no
  checker.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import InvariantViolation
from repro.faults import FaultSpec
from repro.obs.report import RunReport
from repro.sim import cache as sim_cache
from repro.sim.simulation import Simulation
from repro.sim.timeline import TimelineEntry
from repro.validate import (
    BANDS_BY_NAME,
    GOLDEN_BANDS,
    RESULT_INVARIANTS,
    SIMULATION_INVARIANTS,
    check_cache_equivalence,
    check_result,
    check_simulation,
    evaluate,
    failures,
    iter_result_violations,
    iter_simulation_violations,
)
from repro.validate.golden import FAST_MODELS


def _run_live(model="dcgan", config="hetero-pim", steps=2, faults=None):
    graph = api.cached_graph(model)
    system, policy = api.resolve_configuration(config)
    sim = Simulation(
        graph, policy, config=system, steps=steps,
        record_timeline=True, faults=faults,
    )
    return sim, sim.run()


@pytest.fixture(scope="module")
def live():
    """One shared live simulation + result (checks must not mutate it)."""
    return _run_live()


# ---------------------------------------------------------------------------
# invariants hold on genuine output
# ---------------------------------------------------------------------------
class TestInvariantsPass:
    def test_clean_run_passes_all_checks(self, live):
        sim, result = live
        assert check_simulation(sim, result) is result
        assert list(iter_result_violations(result)) == []
        assert list(iter_simulation_violations(sim, result)) == []

    @pytest.mark.parametrize(
        "config", ["cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim"]
    )
    def test_every_configuration_passes(self, config):
        sim, result = _run_live("dcgan", config)
        check_simulation(sim, result)

    def test_simulation_validate_flag_checks_inline(self):
        graph = api.cached_graph("dcgan")
        system, policy = api.resolve_configuration("hetero-pim")
        sim = Simulation(graph, policy, config=system, steps=2, validate=True)
        result = sim.run()
        # validate forces a timeline even without record_timeline
        assert sim.timeline is not None and sim.timeline.entries
        assert list(iter_result_violations(result)) == []

    def test_api_simulate_validate_reports_summary(self):
        report = api.simulate("dcgan", "hetero-pim", steps=2, validate=True)
        assert report.validation is not None
        assert report.validation["passed"] is True
        checked = set(report.validation["invariants"])
        assert checked == set(RESULT_INVARIANTS + SIMULATION_INVARIANTS)
        # the summary survives the report's serialization round trip
        clone = RunReport.from_json(report.to_json())
        assert clone.validation == report.validation

    def test_env_knob_enables_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert sim_cache.validation_enabled()
        report = api.simulate("dcgan", "hetero-pim", steps=2)
        assert report.validation is not None
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert not sim_cache.validation_enabled()

    def test_simulate_cached_validates_hit_and_miss(self):
        graph = api.cached_graph("dcgan")
        system, policy = api.resolve_configuration("hetero-pim")
        # miss path (memory tier cleared) then hit path, both validated
        fingerprint = sim_cache.run_fingerprint(graph, policy, system, 2)
        sim_cache._memory.pop(fingerprint, None)
        fresh = sim_cache.simulate_cached(
            graph, policy, system, steps=2, validate=True
        )
        hit = sim_cache.simulate_cached(
            graph, policy, system, steps=2, validate=True
        )
        assert fresh.to_dict() == hit.to_dict()


class TestInvariantsPassProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        model=st.sampled_from(
            ("dcgan", "alexnet", "transformer", "gnn", "embedrec")
        ),
        config=st.sampled_from(
            ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")
        ),
        steps=st.integers(min_value=1, max_value=3),
    )
    def test_random_model_config_combos_pass(self, model, config, steps):
        sim, result = _run_live(model, config, steps=steps)
        check_simulation(sim, result)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_events=st.integers(min_value=1, max_value=4),
    )
    def test_random_fault_seeds_pass(self, seed, n_events):
        spec = FaultSpec.generate(seed=seed, horizon_s=0.5, n_events=n_events)
        sim, result = _run_live("dcgan", "hetero-pim", faults=spec)
        check_simulation(sim, result)


class TestModernFamilyInvariants:
    """The nine invariants hold for every new workload family under every
    registered hardware backend."""

    @pytest.mark.parametrize("model", ("transformer", "gnn", "embedrec"))
    @pytest.mark.parametrize(
        "backend,config",
        (
            ("hmc-hetero", "hetero-pim"),
            ("gradpim", "gradpim"),
            ("neurotrainer", "neurotrainer"),
        ),
    )
    def test_families_pass_under_all_backends(self, model, backend, config):
        graph = api.cached_graph(model)
        system, policy = api.resolve_configuration(config, backend=backend)
        sim = Simulation(
            graph, policy, config=system, steps=1, record_timeline=True
        )
        result = sim.run()
        check_simulation(sim, result)
        assert list(iter_result_violations(result)) == []


# ---------------------------------------------------------------------------
# every invariant class fires on a corrupted run
# ---------------------------------------------------------------------------
def _violations(result):
    return {v.invariant for v in iter_result_violations(result)}


class TestInvariantsFire:
    """One corruption per invariant class; the checker must name it."""

    def test_busy_fraction_range_fires(self, live):
        _sim, result = live
        bad = dataclasses.replace(
            result, device_busy_fraction={"cpu": 1.5, "prog": -0.2}
        )
        assert "busy-fraction-range" in _violations(bad)
        bad = dataclasses.replace(result, fixed_pim_utilization=float("nan"))
        assert "busy-fraction-range" in _violations(bad)

    def test_occupancy_conservation_fires(self, live):
        _sim, result = live
        hist = tuple(v * 2.0 for v in result.bank_occupancy_hist_s)
        bad = dataclasses.replace(result, bank_occupancy_hist_s=hist)
        assert "occupancy-conservation" in _violations(bad)
        negative = (-1.0,) + tuple(result.bank_occupancy_hist_s[1:])
        bad = dataclasses.replace(result, bank_occupancy_hist_s=negative)
        assert "occupancy-conservation" in _violations(bad)

    def test_energy_conservation_fires(self, live):
        _sim, result = live
        devices = dict(result.energy.by_device)
        device = next(iter(devices))
        devices[device] = devices[device] + 1.0  # breaks the device sum
        bad = dataclasses.replace(
            result, energy=dataclasses.replace(result.energy, by_device=devices)
        )
        assert "energy-conservation" in _violations(bad)
        bad = dataclasses.replace(
            result,
            energy=dataclasses.replace(result.energy, makespan_s=1e9),
        )
        assert "energy-conservation" in _violations(bad)

    def test_time_breakdown_conservation_fires(self, live):
        _sim, result = live
        bad = dataclasses.replace(
            result,
            breakdown=dataclasses.replace(
                result.breakdown, operation_s=result.breakdown.operation_s * 3
            ),
        )
        assert "time-breakdown-conservation" in _violations(bad)

    def test_step_accounting_fires(self, live):
        _sim, result = live
        bad = dataclasses.replace(result, events_processed=0)
        assert "step-accounting" in _violations(bad)
        bad = dataclasses.replace(
            result, step_time_s=result.makespan_s * 10
        )
        assert "step-accounting" in _violations(bad)

    def test_queue_wait_sane_fires(self, live):
        _sim, result = live
        bad = dataclasses.replace(result, queue_wait_s={"cpu": -0.5})
        assert "queue-wait-sane" in _violations(bad)

    def test_check_result_raises_structured_error(self, live):
        _sim, result = live
        bad = dataclasses.replace(result, device_busy_fraction={"gpu": 2.0})
        with pytest.raises(InvariantViolation) as excinfo:
            check_result(bad)
        err = excinfo.value
        assert err.invariant == "busy-fraction-range"
        assert err.subject == "gpu"
        assert "busy-fraction-range" in str(err) and "gpu" in str(err)

    def test_every_result_invariant_class_covered(self, live):
        """Meta-test: the corruptions above span all result invariants."""
        _sim, result = live
        fired = set()
        corruptions = (
            dataclasses.replace(result, device_busy_fraction={"cpu": 2.0}),
            dataclasses.replace(
                result,
                bank_occupancy_hist_s=tuple(
                    v * 2.0 for v in result.bank_occupancy_hist_s
                ),
            ),
            dataclasses.replace(
                result,
                energy=dataclasses.replace(result.energy, dynamic_j=-1.0),
            ),
            dataclasses.replace(
                result,
                breakdown=dataclasses.replace(result.breakdown, sync_s=-1.0),
            ),
            dataclasses.replace(result, events_processed=0),
            dataclasses.replace(result, queue_wait_s={"prog": float("inf")}),
        )
        for bad in corruptions:
            fired |= _violations(bad)
        assert fired >= set(RESULT_INVARIANTS)


class TestSimulationInvariantsFire:
    """Live-simulation invariants on mutated simulation state."""

    def test_dependence_order_fires(self):
        sim, result = _run_live()
        entry = sim.timeline.entries[0]
        sim.timeline.entries[0] = TimelineEntry(
            uid=entry.uid, op_type=entry.op_type, device=entry.device,
            step=entry.step, start_s=entry.start_s, end_s=entry.end_s,
            ready_s=entry.start_s + 1.0,  # "started" before it was ready
        )
        fired = {v.invariant for v in iter_simulation_violations(sim, result)}
        assert "dependence-order" in fired

    def test_device_quiescence_fires_on_unfinished_task(self):
        sim, result = _run_live()
        next(iter(sim._tasks.values())).done = False
        fired = {v.invariant for v in iter_simulation_violations(sim, result)}
        assert "device-quiescence" in fired

    def test_device_quiescence_fires_on_pending_event(self):
        sim, result = _run_live()
        sim.engine._heap.append([result.makespan_s + 1.0, 10**9, lambda: None])
        assert not sim.engine.drained
        fired = {v.invariant for v in iter_simulation_violations(sim, result)}
        assert "device-quiescence" in fired

    def test_timeline_agreement_fires(self):
        sim, result = _run_live()
        entry = sim.timeline.entries[0]
        sim.timeline.add(entry)  # phantom duplicate record
        fired = {v.invariant for v in iter_simulation_violations(sim, result)}
        assert "timeline-agreement" in fired

    def test_faulted_run_still_passes(self):
        spec = FaultSpec.generate(seed=7, horizon_s=0.5, n_events=3)
        sim, result = _run_live("dcgan", "hetero-pim", faults=spec)
        check_simulation(sim, result)


class TestCacheEquivalence:
    def test_identical_results_pass(self, live):
        _sim, result = live
        check_cache_equivalence(result, result)
        check_cache_equivalence(result, None)  # cold cache: nothing to do

    def test_divergent_cached_result_fires(self, live):
        _sim, result = live
        drifted = dataclasses.replace(result, makespan_s=result.makespan_s * 2)
        with pytest.raises(InvariantViolation) as excinfo:
            check_cache_equivalence(result, drifted, source="disk tier")
        assert excinfo.value.invariant == "cache-equivalence"
        assert excinfo.value.subject == "disk tier"
        assert "makespan_s" in excinfo.value.detail


# ---------------------------------------------------------------------------
# paper-fidelity gate
# ---------------------------------------------------------------------------
class TestGoldenBands:
    def test_bands_are_well_formed(self):
        assert len(GOLDEN_BANDS) == len(BANDS_BY_NAME)  # unique names
        for band in GOLDEN_BANDS:
            assert band.figure in ("fig8", "fig9", "table1")
            assert band.paper, f"{band.name} lacks paper provenance"
            assert band.claim
            if band.lo is not None and band.hi is not None:
                assert band.lo <= band.hi

    def test_admits_respects_bounds(self):
        band = BANDS_BY_NAME[("fig8", "hetero-speedup-over-fixed")]
        assert band.admits(band.lo) and band.admits(band.hi)
        assert not band.admits(band.lo - 0.01)
        assert not band.admits(band.hi + 0.01)

    def test_gate_passes_on_real_results(self):
        findings = evaluate(models=("dcgan",))
        assert findings
        assert failures(findings) == []

    def test_gate_fails_on_distorted_results(self):
        from repro.experiments.common import run_model_on

        def distorted(model, config):
            result = run_model_on(model, config)
            if config == "hetero-pim":
                # a 50x slowdown of the flagship config must trip fig8
                return dataclasses.replace(
                    result, step_time_s=result.step_time_s * 50
                )
            return result

        findings = evaluate(models=("dcgan",), run=distorted)
        failed = failures(findings)
        assert failed
        assert any(f.band.figure == "fig8" for f in failed)

    def test_fast_models_match_paper_band_suite(self):
        # keep the gate's fast set in lockstep with tests/test_paper_bands.py
        assert FAST_MODELS == ("vgg-19", "alexnet", "dcgan")
