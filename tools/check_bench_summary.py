#!/usr/bin/env python
"""CI gate: ``BENCH_summary.json`` must cover every benchmark module.

The benchmark harness (benchmarks/conftest.py) records one entry per
executed benchmark into ``BENCH_summary.json``.  CI runs the full
``benchmarks/`` directory; this check fails if any ``bench_*.py`` module
is missing from the summary — which happens when a benchmark silently
stopped running (collection error, filename typo, stale summary from a
partial run).

Usage: ``python tools/check_bench_summary.py [summary_path]``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    summary_path = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_summary.json"
    )
    if not summary_path.is_file():
        print(f"FAIL: {summary_path} does not exist")
        return 1
    summary = json.loads(summary_path.read_text())
    figures = summary.get("figures", {})
    covered = {nodeid.split("::")[0].split("/")[-1] for nodeid in figures}

    modules = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
    if not modules:
        print("FAIL: no benchmark modules found under benchmarks/")
        return 1
    missing = [m for m in modules if m not in covered]
    if missing:
        print(
            f"FAIL: BENCH_summary.json covers {len(covered)} of "
            f"{len(modules)} benchmark modules; missing: {', '.join(missing)}"
        )
        return 1
    print(
        f"bench summary OK: all {len(modules)} benchmark modules covered "
        f"({summary.get('total_wall_clock_s', '?')} s total)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
