#!/usr/bin/env python
"""CI gate: ``BENCH_summary.json`` must cover every benchmark module.

The benchmark harness (benchmarks/conftest.py) records one entry per
executed benchmark into ``BENCH_summary.json``.  CI runs the full
``benchmarks/`` directory; this check fails if any ``bench_*.py`` module
is missing from the summary — which happens when a benchmark silently
stopped running (collection error, filename typo, stale summary from a
partial run).

It additionally requires one ``bench_families.py`` entry per modern
workload family (transformer / gnn / embedrec): the family benchmark is
parametrized per model, so a family silently dropping out of the sweep
(renamed model, narrowed parametrization) is caught even though the
module itself still appears covered.

Usage: ``python tools/check_bench_summary.py [summary_path]``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: One benchmark entry per modern workload family must be present
#: (bench_families.py is parametrized over these models).
FAMILY_MODELS = ("transformer", "gnn", "embedrec")


def main() -> int:
    summary_path = (
        Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_summary.json"
    )
    if not summary_path.is_file():
        print(f"FAIL: {summary_path} does not exist")
        return 1
    summary = json.loads(summary_path.read_text())
    figures = summary.get("figures", {})
    covered = {nodeid.split("::")[0].split("/")[-1] for nodeid in figures}

    modules = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
    if not modules:
        print("FAIL: no benchmark modules found under benchmarks/")
        return 1
    missing = [m for m in modules if m not in covered]
    if missing:
        print(
            f"FAIL: BENCH_summary.json covers {len(covered)} of "
            f"{len(modules)} benchmark modules; missing: {', '.join(missing)}"
        )
        return 1
    family_nodeids = [n for n in figures if "bench_families.py" in n]
    missing_families = [
        model
        for model in FAMILY_MODELS
        if not any(f"[{model}]" in n for n in family_nodeids)
    ]
    if missing_families:
        print(
            "FAIL: BENCH_summary.json has no bench_families entry for "
            f"families: {', '.join(missing_families)}"
        )
        return 1
    print(
        f"bench summary OK: all {len(modules)} benchmark modules covered "
        f"({summary.get('total_wall_clock_s', '?')} s total)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
