#!/usr/bin/env python
"""CI chaos gate: seeded infrastructure faults against the real binaries.

Every scenario runs real ``repro`` subprocesses on throwaway cache
directories with a :mod:`repro.chaos` spec injected through the
``REPRO_CHAOS`` environment variable, and asserts the storage/serving
invariants the robustness layer promises:

1. **no corrupt bytes are ever served** — runs against a store whose
   every object write was bit-flipped produce stdout identical to clean
   runs (verify-on-read quarantines the damage and recomputes);
2. **fsck repairs 100% of injected damage byte-identically** — a store
   with every object's payload corrupted comes back, after ``repro cache
   fsck --repair``, byte-for-byte equal to the clean store;
3. **journal damage is contained** — a torn interior journal line is
   counted and dropped, the surviving records still load, and fsck
   reports the damage without failing the store;
4. **ENOSPC degrades, never crashes** — with every cache/journal write
   raising ENOSPC, simulations still exit 0 with clean-identical stdout
   and the store reports degraded memory-only mode;
5. **overload sheds instead of collapsing** — a 1-worker daemon with a
   2-deep bounded queue under a burst of slow requests answers 503 (with
   ``Retry-After``) for the excess and 504 for queued requests whose
   ``X-Repro-Deadline-Ms`` expired, never grows its queue past the
   bound, and still drains cleanly on SIGTERM;
6. **a murdered pool worker is survivable** — a ``worker_kill`` rule
   SIGKILLs exactly one worker mid-batch; the batch completes with
   results identical to a calm run;
7. **a corrupted stored serve report self-heals** — the daemon detects
   the sidecar mismatch on the next read, quarantines the report, and
   re-serves recomputed, byte-identical bytes.

Usage: ``PYTHONPATH=src python tools/check_chaos.py``
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.bench import http_request  # noqa: E402

#: Small, fast workloads shared by the storage scenarios.
RUNS = (
    ("lstm", "hetero-pim", 1),
    ("word2vec", "prog-pim", 1),
)


def spec(*rules: dict, seed: int = 7) -> str:
    return json.dumps({"seed": seed, "rules": list(rules)})


def cli_env(cache: Path, chaos: str = "", verify: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache)
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_VERIFY_READS", None)
    env.pop("REPRO_JOBS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    if verify:
        env["REPRO_VERIFY_READS"] = verify
    return env


def run_cli(args: list, env: dict, check: bool = True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if check:
        assert proc.returncode == 0, (
            f"repro {' '.join(args)} exited {proc.returncode}\n"
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
        )
    return proc


def populate(cache: Path, chaos: str = "", verify: str = "") -> list:
    outs = []
    for model, config, steps in RUNS:
        proc = run_cli(
            ["run", model, "--config", config, "--steps", str(steps)],
            cli_env(cache, chaos=chaos, verify=verify),
        )
        outs.append(proc.stdout)
    return outs


def object_snapshot(cache: Path) -> dict:
    root = cache / "objects"
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


def check_no_corrupt_bytes_served(tmp: Path, clean_out: list, clean_objects: dict):
    """Scenario 1: every object write bit-flipped; reads self-heal."""
    cache = tmp / "flip-cache"
    chaos = spec(
        {"site": "cache.object_write", "kind": "bit_flip", "one_in": 1}
    )
    flipped_out = populate(cache, chaos=chaos)
    assert flipped_out == clean_out, "fresh runs under write-corruption drifted"

    healed_out = populate(cache, verify="always")
    assert healed_out == clean_out, "corrupt store leaked into served results"
    quarantined = list((cache / "quarantine").rglob("*.json"))
    assert len(quarantined) == len(RUNS), (
        f"expected {len(RUNS)} quarantined objects, got {len(quarantined)}"
    )
    assert object_snapshot(cache) == clean_objects, (
        "self-healed store is not byte-identical to the clean store"
    )
    print(
        f"no-corrupt-bytes OK: {len(RUNS)} bit-flipped objects quarantined, "
        "recomputed, outputs clean-identical"
    )


def check_fsck_repairs_byte_identically(tmp: Path, clean: Path, clean_objects: dict):
    """Scenario 2: corrupt every object payload, fsck --repair restores."""
    cache = tmp / "fsck-cache"
    shutil.copytree(clean, cache)
    root = cache / "objects"
    for path in root.rglob("*.json"):
        data = bytearray(path.read_bytes())
        data[-20] ^= 0x40  # payload tail: metadata header stays intact
        path.write_bytes(bytes(data))

    detect = run_cli(["cache", "fsck"], cli_env(cache), check=False)
    assert detect.returncode == 1, f"fsck missed damage: {detect.stdout}"
    repair = run_cli(["cache", "fsck", "--repair", "--json"], cli_env(cache))
    report = json.loads(repair.stdout)
    objects = report["objects"]
    assert objects["corrupt"] == len(clean_objects), objects
    assert objects["repaired"] == objects["corrupt"], objects
    assert report["clean"], report
    assert object_snapshot(cache) == clean_objects, (
        "fsck --repair did not restore byte-identical objects"
    )
    rescan = run_cli(["cache", "fsck"], cli_env(cache))
    assert json.loads(run_cli(
        ["cache", "fsck", "--json"], cli_env(cache)
    ).stdout)["clean"], rescan.stdout
    print(
        f"fsck OK: {objects['corrupt']}/{objects['corrupt']} corrupt objects "
        "repaired byte-identically"
    )


JOURNAL_SCRIPT = """
import sys
from repro.experiments.journal import RunJournal
journal = RunJournal.create("experiment", {"id": "chaos"}, run_id="torn")
for fp in ("aaa", "bbb", "ccc"):
    journal.record_job(fp, "done")
journal.record_event("complete")
journal.close()
loaded = RunJournal.load("torn")
print(loaded.corrupt_lines, sorted(loaded.completed_fingerprints()))
"""


def check_journal_torn_write(tmp: Path):
    """Scenario 3: torn interior journal line is counted and contained."""
    cache = tmp / "journal-cache"
    chaos = spec({"site": "journal.append", "kind": "torn_write", "at": [2]})
    proc = subprocess.run(
        [sys.executable, "-c", JOURNAL_SCRIPT],
        env=cli_env(cache, chaos=chaos),
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    corrupt, completed = proc.stdout.strip().split(" ", 1)
    # occurrence 2 is the second job line ("bbb"): torn mid-line, the
    # following append glues onto it, so both records are damaged
    assert int(corrupt) >= 1, proc.stdout
    assert "'aaa'" in completed and "'bbb'" not in completed, proc.stdout
    fsck = run_cli(["cache", "fsck", "--json"], cli_env(cache))
    report = json.loads(fsck.stdout)
    assert report["journals"]["damaged"] == 1, report
    assert report["journals"]["corrupt_lines"] >= 1, report
    assert report["clean"], "tolerated journal damage must not fail fsck"
    print(
        f"journal OK: torn interior line -> {corrupt} corrupt line(s) "
        "counted, survivors intact, fsck stays clean"
    )


ENOSPC_SCRIPT = """
from repro import api
from repro.sim import cache as sim_cache
for steps in (1, 2, 3, 4):
    report = api.simulate("lstm", "hetero-pim", steps)
    print(report.result.steps, f"{report.result.step_energy_j:.6f}")
stats = sim_cache.stats()
print("degraded", stats["degraded"], "write_errors", stats["write_errors"])
"""


def check_enospc_degrades(tmp: Path):
    """Scenario 4: a full disk means memory-only mode, not a crash."""
    chaos = spec(
        {"site": "cache.object_write", "kind": "enospc", "one_in": 1},
        {"site": "journal.append", "kind": "enospc", "one_in": 1},
    )

    def run_script(cache: Path, chaos_spec: str):
        return subprocess.run(
            [sys.executable, "-c", ENOSPC_SCRIPT],
            env=cli_env(cache, chaos=chaos_spec),
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=600,
        )

    calm = run_script(tmp / "enospc-calm", "")
    assert calm.returncode == 0, calm.stderr
    full = run_script(tmp / "enospc-full", chaos)
    assert full.returncode == 0, f"ENOSPC crashed the run: {full.stderr}"
    calm_results = calm.stdout.splitlines()[:-1]
    full_results = full.stdout.splitlines()[:-1]
    assert full_results == calm_results, (calm.stdout, full.stdout)
    assert "degraded 1" in full.stdout.splitlines()[-1], full.stdout
    assert "degraded 0" in calm.stdout.splitlines()[-1], calm.stdout
    assert "degraded" in full.stderr, "no operator warning on degradation"
    assert not list((tmp / "enospc-full" / "objects").rglob("*.json")), (
        "ENOSPC store somehow persisted objects"
    )
    print(
        "enospc OK: 4 simulations with a full disk -> exit 0, "
        "clean-identical results, degraded memory-only mode"
    )


class Daemon:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, cache: Path, *extra: str, chaos: str = "", verify: str = ""):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
            env=cli_env(cache, chaos=chaos, verify=verify),
            cwd=REPO,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = self.proc.stderr.readline()
        if "listening on" not in banner:
            raise AssertionError(f"daemon failed to start: {banner!r}")
        self.port = int(
            banner.split("listening on ")[1].split(" ")[0].split(":")[1]
        )

    def post(self, request: dict, headers: dict = None):
        return http_request(
            "127.0.0.1",
            self.port,
            "POST",
            "/v1/simulate",
            json.dumps(request, sort_keys=True).encode(),
            headers=headers,
        )

    def get(self, path: str):
        return http_request("127.0.0.1", self.port, "GET", path)

    def kill(self):
        self.proc.kill()
        self.proc.wait()

    def terminate(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=120)


def check_overload_sheds(tmp: Path):
    """Scenario 5: bounded queue sheds 503s, expired deadlines get 504."""
    chaos = spec(
        {
            "site": "serve.execute",
            "kind": "slow_io",
            "one_in": 1,
            "delay_s": 1.0,
        }
    )
    daemon = Daemon(
        tmp / "overload-cache",
        "--workers", "1", "--max-queue", "2",
        chaos=chaos,
    )
    try:
        results = {}

        def post(key: str, steps: int, headers: dict = None):
            results[key] = daemon.post(
                {"model": "alexnet", "steps": steps}, headers=headers
            )

        # occupy the single worker with one slow request...
        t_busy = threading.Thread(target=post, args=("busy", 2))
        t_busy.start()
        time.sleep(0.4)
        # ...queue one request whose deadline expires while it waits...
        t_dead = threading.Thread(
            target=post,
            args=("deadline", 3),
            kwargs={"headers": {"X-Repro-Deadline-Ms": "100"}},
        )
        t_dead.start()
        time.sleep(0.2)
        # ...then flood with distinct requests to overflow the bound
        flood = [
            threading.Thread(target=post, args=(f"flood{i}", 4 + i))
            for i in range(6)
        ]
        for t in flood:
            t.start()
        for t in [t_busy, t_dead, *flood]:
            t.join()

        statuses = {key: results[key][0] for key in results}
        assert statuses["busy"] == 200, statuses
        assert statuses["deadline"] == 504, statuses
        shed = [k for k in statuses if statuses[k] == 503]
        served = [k for k in statuses if statuses[k] == 200]
        assert shed, f"bounded queue never shed under 4x overload: {statuses}"
        for key in shed:
            headers = results[key][1]
            assert int(headers.get("retry-after", "0")) >= 1, headers

        _s, _h, health = daemon.get("/v1/healthz")
        payload = json.loads(health)
        assert payload["queue_peak"] <= 2, payload["queue_peak"]
        assert payload["max_queue"] == 2, payload["max_queue"]
        counters = payload["counters"]
        assert counters.get("serve.shed") == len(shed), (counters, statuses)
    except BaseException:
        daemon.kill()
        raise
    code = daemon.terminate()
    assert code == 0, f"overloaded daemon failed to drain: exit {code}"
    print(
        f"overload OK: {len(served)} served, {len(shed)} shed with "
        "Retry-After, 1 expired deadline -> 504, queue bounded at 2"
    )


WORKER_SCRIPT = """
from repro.experiments import runner
from repro.experiments.common import cached_graph, resolve_configuration
config, policy = resolve_configuration("hetero-pim")
jobs = [(cached_graph("lstm"), policy, config, steps) for steps in (1, 2, 3)]
results = runner.run_jobs(jobs)
for result in results:
    print(result.steps, f"{result.step_energy_j:.6f}")
print("crashes", runner.last_supervision().crashes)
"""


def check_worker_kill_survived(tmp: Path):
    """Scenario 6: SIGKILL exactly one pool worker; the batch completes."""
    chaos = spec(
        {"site": "worker.kill", "kind": "worker_kill", "at": [0], "once": True}
    )

    def run_script(cache: Path, chaos_spec: str):
        env = cli_env(cache, chaos=chaos_spec)
        env["REPRO_JOBS"] = "2"
        return subprocess.run(
            [sys.executable, "-c", WORKER_SCRIPT],
            env=env,
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=600,
        )

    calm = run_script(tmp / "kill-calm", "")
    assert calm.returncode == 0, calm.stderr
    chaotic = run_script(tmp / "kill-chaos", chaos)
    assert chaotic.returncode == 0, chaotic.stderr
    calm_lines = calm.stdout.splitlines()
    chaos_lines = chaotic.stdout.splitlines()
    assert chaos_lines[:-1] == calm_lines[:-1], (calm.stdout, chaotic.stdout)
    assert calm_lines[-1] == "crashes 0", calm.stdout
    crashes = int(chaos_lines[-1].split()[-1])
    assert crashes >= 1, f"worker_kill never fired: {chaotic.stdout}"
    print(
        f"worker-kill OK: {crashes} worker crash survived, batch results "
        "identical to the calm run"
    )


def check_report_corruption_self_heals(tmp: Path):
    """Scenario 7: corrupt stored serve report -> quarantine + recompute."""
    chaos = spec(
        {"site": "serve.report_write", "kind": "bit_flip", "at": [0]}
    )
    daemon = Daemon(
        tmp / "report-cache", "--workers", "1",
        chaos=chaos, verify="always",
    )
    try:
        request = {"model": "alexnet", "steps": 2}
        status1, _h1, body1 = daemon.post(request)
        assert status1 == 200, status1
        # the stored copy was bit-flipped; the next request reads the
        # store, must reject it, and recompute the same bytes
        status2, headers2, body2 = daemon.post(request)
        assert status2 == 200, status2
        assert body2 == body1, "corrupt stored report leaked to a client"
        assert headers2.get("x-repro-served-from") != "store"

        _s, _h, health = daemon.get("/v1/healthz")
        integrity = json.loads(health)["integrity"]
        assert integrity.get("serve.corrupt_reports", 0) == 1, integrity

        # the rewritten report now serves from the store, byte-identical
        status3, headers3, body3 = daemon.post(request)
        assert status3 == 200 and body3 == body1
        assert headers3.get("x-repro-served-from") == "store", headers3
    except BaseException:
        daemon.kill()
        raise
    code = daemon.terminate()
    assert code == 0, f"daemon failed to drain: exit {code}"
    print(
        "report-heal OK: bit-flipped stored report quarantined and "
        "re-served byte-identically"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-gate-") as raw:
        tmp = Path(raw)
        clean_cache = tmp / "clean-cache"
        clean_out = populate(clean_cache)
        clean_objects = object_snapshot(clean_cache)
        print(f"clean baseline: {len(clean_objects)} objects from {len(RUNS)} runs")

        check_no_corrupt_bytes_served(tmp, clean_out, clean_objects)
        check_fsck_repairs_byte_identically(tmp, clean_cache, clean_objects)
        check_journal_torn_write(tmp)
        check_enospc_degrades(tmp)
        check_overload_sheds(tmp)
        check_worker_kill_survived(tmp)
        check_report_corruption_self_heals(tmp)
    print("chaos gate PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
