#!/usr/bin/env python
"""CI determinism gate: byte-identical artifacts across execution modes.

Runs one small experiment bundle (a fault-free run, a fault-injected run
with a nonzero seed, a Chrome trace export, and a multi-config experiment
sweep) three times:

1. serial, cold cache;
2. ``--jobs 4`` (process-pool workers), cold cache;
3. serial again, warm cache (reusing run 1's disk tier).

All three must produce byte-identical artifacts — any drift between
serial/parallel execution or cold/warm cache is a correctness bug in the
result cache, the runner, or the simulator's determinism, and fails CI.

Usage: ``PYTHONPATH=src python tools/check_determinism.py``
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The workload every mode regenerates.  Kept small (seconds, not
#: minutes) but wide: cache round trips, fault injection with retries /
#: degradation, trace export, and the parallel experiment runner.
INNER = """
import json
import sys

from repro import api
from repro.experiments import faults as faults_experiment
from repro.faults import FaultSpec
from repro.obs.trace import validate_chrome_trace

out = []

# compare the result records, not the RunReport envelope: the envelope's
# cache_stats legitimately differ between cold and warm runs
plain = api.simulate("alexnet", "hetero-pim", steps=2)
out.append(plain.result.to_json())

spec = FaultSpec.generate(seed=13, horizon_s=plain.makespan_s, n_events=3)
faulted = api.simulate("alexnet", "hetero-pim", steps=2, faults=spec, observe=True)
out.append(faulted.result.to_json())

trace_path = sys.argv[2]
faulted.save_trace(trace_path)
validate_chrome_trace(trace_path)
out.append(open(trace_path).read())

sweep = faults_experiment.run(event_counts=(0, 2, 4), steps=2)
out.append(faults_experiment.format_result(sweep))

with open(sys.argv[1], "w") as fh:
    fh.write("\\n".join(out))
"""


def run_mode(name: str, cache_dir: Path, jobs: int, workdir: Path) -> bytes:
    artifact = workdir / f"{name}.out"
    trace = workdir / f"{name}.trace.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    env["REPRO_JOBS"] = str(jobs)
    subprocess.run(
        [sys.executable, "-c", INNER, str(artifact), str(trace)],
        check=True,
        env=env,
        cwd=REPO,
    )
    return artifact.read_bytes()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        workdir = Path(tmp)
        cache_a = workdir / "cache-serial"
        cache_b = workdir / "cache-jobs"
        serial_cold = run_mode("serial-cold", cache_a, jobs=1, workdir=workdir)
        jobs_cold = run_mode("jobs4-cold", cache_b, jobs=4, workdir=workdir)
        warm = run_mode("serial-warm", cache_a, jobs=1, workdir=workdir)

    failures = []
    if serial_cold != jobs_cold:
        failures.append("serial-cold vs jobs4-cold")
    if serial_cold != warm:
        failures.append("serial-cold vs serial-warm")
    if failures:
        print(f"DETERMINISM FAILURE: artifacts differ: {', '.join(failures)}")
        return 1
    print(
        f"determinism OK: {len(serial_cold)} artifact bytes identical across "
        "serial/jobs=4/warm-cache runs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
