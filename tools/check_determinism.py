#!/usr/bin/env python
"""CI determinism gate: byte-identical artifacts across execution modes.

Runs one small experiment bundle (a fault-free run, a fault-injected run
with a nonzero seed, a Chrome trace export, and a multi-config experiment
sweep) three times:

1. serial, cold cache;
2. ``--jobs 4`` (process-pool workers), cold cache;
3. serial again, warm cache (reusing run 1's disk tier).

All three must produce byte-identical artifacts — any drift between
serial/parallel execution or cold/warm cache is a correctness bug in the
result cache, the runner, or the simulator's determinism, and fails CI.

``--chaos`` runs the crash-safety gate instead: a journaled
``repro experiment faults`` batch under ``REPRO_JOBS=4`` is killed
mid-run (once gracefully with SIGINT, once hard with SIGKILL) as soon as
its journal shows completed jobs, then picked back up with
``repro resume`` — and the resumed artifact must be byte-identical to an
uninterrupted serial baseline.  ``--all`` runs both gates.

``--validate`` runs every mode under the invariant checker
(``REPRO_VALIDATE=1``, see :mod:`repro.validate`): any conservation or
cache-equivalence violation fails the child run, and therefore the gate.

Usage: ``PYTHONPATH=src python tools/check_determinism.py
[--chaos|--all] [--validate]``
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Set by ``--validate``: child runs execute with ``REPRO_VALIDATE=1``.
VALIDATE = False

#: The workload every mode regenerates.  Kept small (seconds, not
#: minutes) but wide: cache round trips, fault injection with retries /
#: degradation, trace export, and the parallel experiment runner.
INNER = """
import json
import sys

from repro import api
from repro.experiments import faults as faults_experiment
from repro.faults import FaultSpec
from repro.obs.trace import validate_chrome_trace

out = []

# compare the result records, not the RunReport envelope: the envelope's
# cache_stats legitimately differ between cold and warm runs
plain = api.simulate("alexnet", "hetero-pim", steps=2)
out.append(plain.result.to_json())

spec = FaultSpec.generate(seed=13, horizon_s=plain.makespan_s, n_events=3)
faulted = api.simulate("alexnet", "hetero-pim", steps=2, faults=spec, observe=True)
out.append(faulted.result.to_json())

trace_path = sys.argv[2]
faulted.save_trace(trace_path)
validate_chrome_trace(trace_path)
out.append(open(trace_path).read())

sweep = faults_experiment.run(event_counts=(0, 2, 4), steps=2)
out.append(faults_experiment.format_result(sweep))

# one representative per modern workload family: dropout's deterministic
# expectation-scaling and the gather/segment-sum vocabulary must reproduce
# byte-for-byte across serial/parallel/warm-cache runs too
for family_model in ("transformer", "gnn", "embedrec"):
    run = api.simulate(family_model, "hetero-pim", steps=1)
    out.append(run.result.to_json())

with open(sys.argv[1], "w") as fh:
    fh.write("\\n".join(out))
"""


def run_mode(name: str, cache_dir: Path, jobs: int, workdir: Path) -> bytes:
    artifact = workdir / f"{name}.out"
    trace = workdir / f"{name}.trace.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    env["REPRO_JOBS"] = str(jobs)
    if VALIDATE:
        env["REPRO_VALIDATE"] = "1"
    subprocess.run(
        [sys.executable, "-c", INNER, str(artifact), str(trace)],
        check=True,
        env=env,
        cwd=REPO,
    )
    return artifact.read_bytes()


def check_modes() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        workdir = Path(tmp)
        cache_a = workdir / "cache-serial"
        cache_b = workdir / "cache-jobs"
        serial_cold = run_mode("serial-cold", cache_a, jobs=1, workdir=workdir)
        jobs_cold = run_mode("jobs4-cold", cache_b, jobs=4, workdir=workdir)
        warm = run_mode("serial-warm", cache_a, jobs=1, workdir=workdir)

    failures = []
    if serial_cold != jobs_cold:
        failures.append("serial-cold vs jobs4-cold")
    if serial_cold != warm:
        failures.append("serial-cold vs serial-warm")
    if failures:
        print(f"DETERMINISM FAILURE: artifacts differ: {', '.join(failures)}")
        return 1
    print(
        f"determinism OK: {len(serial_cold)} artifact bytes identical across "
        "serial/jobs=4/warm-cache runs"
    )
    return 0


# ---------------------------------------------------------------------------
# chaos: mid-run kill -> repro resume -> byte-identical artifacts
# ---------------------------------------------------------------------------
#: Experiment the chaos gate interrupts (small: one model, a handful of
#: fault-sweep simulations, but routed through the supervised pool).
CHAOS_EXPERIMENT = "faults"


def _cli_env(cache_dir: Path, jobs: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    env["REPRO_JOBS"] = str(jobs)
    env.pop("REPRO_JOB_TIMEOUT", None)
    if VALIDATE:
        env["REPRO_VALIDATE"] = "1"
    return env


def _kill_midrun(cache_dir: Path, run_id: str, sig: signal.Signals) -> int:
    """Start the chaos experiment, kill it once its journal shows progress
    (completed jobs), and return the exit code."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "experiment",
            CHAOS_EXPERIMENT,
            "--run-id",
            run_id,
        ],
        env=_cli_env(cache_dir, jobs=4),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    journal = cache_dir / "journal" / f"{run_id}.jsonl"
    deadline = time.time() + 300
    while time.time() < deadline and proc.poll() is None:
        if journal.exists() and '"status":"done"' in journal.read_text():
            proc.send_signal(sig)
            break
        time.sleep(0.05)
    try:
        proc.wait(timeout=300)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    return proc.returncode


def check_chaos() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        workdir = Path(tmp)
        baseline = subprocess.run(
            [sys.executable, "-m", "repro", "experiment", CHAOS_EXPERIMENT],
            env=_cli_env(workdir / "cache-serial", jobs=1),
            cwd=REPO,
            capture_output=True,
            check=True,
        ).stdout

        failures = []
        scenarios = (
            ("sigint", signal.SIGINT),
            ("sigkill", signal.SIGKILL),
        )
        for name, sig in scenarios:
            cache_dir = workdir / f"cache-{name}"
            code = _kill_midrun(cache_dir, f"chaos-{name}", sig)
            resumed = subprocess.run(
                [sys.executable, "-m", "repro", "resume", f"chaos-{name}"],
                env=_cli_env(cache_dir, jobs=4),
                cwd=REPO,
                capture_output=True,
            )
            if resumed.returncode != 0:
                failures.append(
                    f"{name}: resume exited {resumed.returncode}: "
                    f"{resumed.stderr.decode(errors='replace')[-300:]}"
                )
            elif resumed.stdout != baseline:
                failures.append(
                    f"{name}: resumed artifact differs from serial baseline "
                    f"(killed run exited {code})"
                )
            else:
                print(
                    f"chaos {name}: killed mid-run (exit {code}), resumed "
                    f"byte-identical ({len(baseline)} artifact bytes)"
                )
    if failures:
        print("CHAOS FAILURE: " + "; ".join(failures))
        return 1
    print("chaos OK: interrupt-and-resume artifacts byte-identical")
    return 0


def main() -> int:
    global VALIDATE
    args = sys.argv[1:]
    if "--validate" in args:
        VALIDATE = True
        args = [a for a in args if a != "--validate"]
    if args not in ([], ["--chaos"], ["--all"]):
        print(__doc__)
        return 2
    if VALIDATE:
        print("running with REPRO_VALIDATE=1 (invariant checker on)")
    code = 0
    if args != ["--chaos"]:
        code = check_modes()
    if args and code == 0:
        code = check_chaos()
    return code


if __name__ == "__main__":
    sys.exit(main())
