#!/usr/bin/env python
"""CI paper-fidelity gate: golden-band checks over Fig 8/9/Table 1.

Simulates the paper's evaluation matrix (five system configurations per
model, cache-backed) and asserts every speedup/energy ratio and Table I
profiling share against the golden bands in
:mod:`repro.validate.golden` — the paper-reported ranges with explicit,
documented tolerances (see ``docs/architecture.md`` §11).

Every simulation in the sweep additionally runs under the invariant
checker (``REPRO_VALIDATE=1`` semantics): a conservation violation fails
the gate even if the headline ratios still land inside their bands.

Usage::

    PYTHONPATH=src python tools/check_fidelity.py          # fast models
    PYTHONPATH=src python tools/check_fidelity.py --full   # all five
    PYTHONPATH=src python tools/check_fidelity.py --quiet  # failures only

Exit code 0 when all checks pass, 1 on any violated band.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import InvariantViolation  # noqa: E402
from repro.sim import cache as sim_cache  # noqa: E402
from repro.validate import (  # noqa: E402
    EVAL_MODELS,
    FAST_MODELS,
    evaluate,
    failures,
)


def _validated_run(model: str, config: str):
    """Experiment runner used by the gate: cache-backed + invariant-checked."""
    from repro.experiments.common import run_model_on

    result = run_model_on(model, config)
    from repro.validate import check_result

    return check_result(result)


def main() -> int:
    args = sys.argv[1:]
    quiet = "--quiet" in args
    full = "--full" in args
    unknown = [a for a in args if a not in ("--quiet", "--full")]
    if unknown:
        print(__doc__)
        return 2
    models = EVAL_MODELS if full else FAST_MODELS
    print(f"fidelity gate over {', '.join(models)}")
    try:
        findings = evaluate(models, run=_validated_run)
    except InvariantViolation as exc:
        print(f"FIDELITY FAILURE: invariant violated during sweep: {exc}")
        return 1
    failed = failures(findings)
    for finding in findings:
        if finding.ok and quiet:
            continue
        print(finding.render())
    stats = sim_cache.stats()
    print(
        f"{len(findings) - len(failed)}/{len(findings)} checks within "
        f"tolerance ({stats['memory_hits'] + stats['disk_hits']} cache "
        f"hits, {stats['misses']} simulated)"
    )
    if failed:
        print(
            f"FIDELITY FAILURE: {len(failed)} golden band(s) violated — "
            "if the simulator legitimately changed, re-derive the bands "
            "per docs/architecture.md §11"
        )
        return 1
    print("fidelity OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
