#!/usr/bin/env python
"""CI perf gate: ``experiment summary`` wall-clock vs the committed budget.

Measures the full ``repro experiment summary`` pipeline three ways, each
against a throwaway cache directory so the developer's warm cache never
skews (or is polluted by) the numbers:

* **cold** — every simulation runs;
* **warm** — identical second invocation, everything a cache hit;
* **surrogate cold** — result cache emptied again but the cost surrogate
  (trained from the warm cache) answers the estimable queries.

The committed ``BENCH_summary.json`` carries the budget under its
``experiment_summary`` key.  The gate fails only on a >2x regression —
generous slack, because CI machines are slower and noisier than the
box that recorded the budget; the budget exists to catch accidental
de-vectorization or cache-keying regressions, not 10% jitter.

Usage::

    python tools/check_perf.py            # measure and compare (CI gate)
    python tools/check_perf.py --update   # measure and (re)write the budget
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO / "BENCH_summary.json"

#: Regression threshold: fail only when current wall-clock exceeds the
#: committed budget by more than this factor.
SLACK = 2.0


def _run_summary(cache_dir: Path, *extra: str) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    t0 = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "summary", *extra],
        check=True,
        env=env,
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return round(time.perf_counter() - t0, 2)


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        cache = Path(tmp) / "cache"
        cold_s = _run_summary(cache)
        warm_s = _run_summary(cache)
        # train the surrogate from the now-warm cache, then empty the
        # result tier so the surrogate run is honestly cold
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache)
        subprocess.run(
            [sys.executable, "-m", "repro", "surrogate", "train"],
            check=True,
            env=env,
            cwd=REPO,
            stdout=subprocess.DEVNULL,
        )
        shutil.rmtree(cache / "objects")
        surrogate_cold_s = _run_summary(cache, "--surrogate")
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "surrogate_cold_s": surrogate_cold_s,
    }


def measure_serve() -> dict:
    """Serve-daemon latency: warm-path p50/p99 ms + sustained RPS.

    An in-process daemon (fresh cache) answers one cold request, then a
    warm run of store-served repeats — the p99 of THAT path is the gated
    number: it bounds the daemon's fixed overhead (HTTP parse, routing,
    store read) independently of simulator speed.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.serve import start_in_thread
    from repro.serve.bench import run_load

    with tempfile.TemporaryDirectory(prefix="repro-serve-perf-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp  # daemon thread reads it live
        handle = start_in_thread(workers=2)
        try:
            request = {"model": "alexnet", "steps": 2}
            run_load(handle.host, handle.port, request, iterations=1)  # cold
            warm = run_load(handle.host, handle.port, request, iterations=50)
        finally:
            handle.stop()
            del os.environ["REPRO_CACHE_DIR"]
    return {
        "warm_p50_ms": warm["p50_ms"],
        "warm_p99_ms": warm["p99_ms"],
        "warm_rps": warm["rps"],
    }


def main() -> int:
    update = "--update" in sys.argv[1:]
    measured = measure()
    print(
        "experiment summary wall-clock: "
        + ", ".join(f"{k}={v}s" for k, v in measured.items())
    )
    serve_measured = measure_serve()
    print(
        "serve warm path: "
        + ", ".join(f"{k}={v}" for k, v in serve_measured.items())
    )

    if update:
        summary = json.loads(SUMMARY_PATH.read_text()) if SUMMARY_PATH.is_file() else {}
        summary["experiment_summary"] = measured
        summary["serve"] = serve_measured
        SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"budget updated in {SUMMARY_PATH.name}")
        return 0

    if not SUMMARY_PATH.is_file():
        print(f"FAIL: {SUMMARY_PATH} does not exist (no committed budget)")
        return 1
    summary = json.loads(SUMMARY_PATH.read_text())
    budget = summary.get("experiment_summary")
    if not budget:
        print("FAIL: BENCH_summary.json has no experiment_summary budget")
        return 1

    failures = []
    for key, current in measured.items():
        allowed = budget.get(key)
        if allowed is None:
            continue
        if current > SLACK * allowed:
            failures.append(f"{key}: {current}s > {SLACK}x budget ({allowed}s)")

    serve_budget = summary.get("serve", {})
    allowed_p99 = serve_budget.get("warm_p99_ms")
    if allowed_p99 is None:
        failures.append(
            "serve.warm_p99_ms missing from BENCH_summary.json — record it "
            "with 'python tools/check_perf.py --update'"
        )
    elif serve_measured["warm_p99_ms"] > SLACK * allowed_p99:
        failures.append(
            f"serve.warm_p99_ms: {serve_measured['warm_p99_ms']}ms > "
            f"{SLACK}x budget ({allowed_p99}ms)"
        )

    if failures:
        print("PERF REGRESSION: " + "; ".join(failures))
        return 1
    print(
        f"perf OK: all within {SLACK}x of the committed budgets "
        f"{budget} / serve {serve_budget}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
