#!/usr/bin/env python
"""CI perf gate: ``experiment summary`` wall-clock vs the committed budget.

Measures the full ``repro experiment summary`` pipeline three ways, each
against a throwaway cache directory so the developer's warm cache never
skews (or is polluted by) the numbers:

* **cold** — every simulation runs;
* **warm** — identical second invocation, everything a cache hit;
* **surrogate cold** — result cache emptied again but the cost surrogate
  (trained from the warm cache) answers the estimable queries.

The committed ``BENCH_summary.json`` carries the budget under its
``experiment_summary`` key.  The gate fails only on a >2x regression —
generous slack, because CI machines are slower and noisier than the
box that recorded the budget; the budget exists to catch accidental
de-vectorization or cache-keying regressions, not 10% jitter.

Usage::

    python tools/check_perf.py            # measure and compare (CI gate)
    python tools/check_perf.py --update   # measure and (re)write the budget
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO / "BENCH_summary.json"

#: Regression threshold: fail only when current wall-clock exceeds the
#: committed budget by more than this factor.
SLACK = 2.0


def _run_summary(cache_dir: Path, *extra: str) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CACHE"] = "1"
    t0 = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "experiment", "summary", *extra],
        check=True,
        env=env,
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return round(time.perf_counter() - t0, 2)


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        cache = Path(tmp) / "cache"
        cold_s = _run_summary(cache)
        warm_s = _run_summary(cache)
        # train the surrogate from the now-warm cache, then empty the
        # result tier so the surrogate run is honestly cold
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache)
        subprocess.run(
            [sys.executable, "-m", "repro", "surrogate", "train"],
            check=True,
            env=env,
            cwd=REPO,
            stdout=subprocess.DEVNULL,
        )
        shutil.rmtree(cache / "objects")
        surrogate_cold_s = _run_summary(cache, "--surrogate")
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "surrogate_cold_s": surrogate_cold_s,
    }


def main() -> int:
    update = "--update" in sys.argv[1:]
    measured = measure()
    print(
        "experiment summary wall-clock: "
        + ", ".join(f"{k}={v}s" for k, v in measured.items())
    )

    if update:
        summary = json.loads(SUMMARY_PATH.read_text()) if SUMMARY_PATH.is_file() else {}
        summary["experiment_summary"] = measured
        SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"budget updated in {SUMMARY_PATH.name}")
        return 0

    if not SUMMARY_PATH.is_file():
        print(f"FAIL: {SUMMARY_PATH} does not exist (no committed budget)")
        return 1
    budget = json.loads(SUMMARY_PATH.read_text()).get("experiment_summary")
    if not budget:
        print("FAIL: BENCH_summary.json has no experiment_summary budget")
        return 1

    failures = []
    for key, current in measured.items():
        allowed = budget.get(key)
        if allowed is None:
            continue
        if current > SLACK * allowed:
            failures.append(f"{key}: {current}s > {SLACK}x budget ({allowed}s)")
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures))
        return 1
    print(f"perf OK: all within {SLACK}x of the committed budget {budget}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
