#!/usr/bin/env python
"""CI serving gate: the ``repro serve`` behavioral contract, end to end.

Four checks against real daemon subprocesses, each on a throwaway cache
directory:

1. **in-flight dedup** — the same simulate request POSTed concurrently
   from several client threads must trigger exactly ONE simulation
   (``/v1/healthz`` reports one cache miss / one store) while every
   client receives an identical 200 body;
2. **byte-identity** — the served RunReport JSON must equal, byte for
   byte, the artifact ``repro run --report-out`` writes from a separate,
   untouched cache directory (daemon path and library path can never
   drift apart silently);
3. **crash recovery** — a daemon SIGKILLed right after accepting a batch
   (``wait: false``) must, on restart, recover the journaled requests,
   finish them, and serve each report; an already-served report must
   come back byte-identical from the store;
4. **graceful drain** — SIGTERM stops the listener, finishes queued
   work, journals ``complete`` and exits 0.

Usage: ``PYTHONPATH=src python tools/check_serve.py``
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.bench import http_request, post_simulate  # noqa: E402

#: The request every check serves (small model, tiny step count).
REQUEST = {"model": "alexnet", "steps": 2}

#: Concurrent identical clients in the dedup check.
CLIENTS = 4


class Daemon:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, cache_dir: Path, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
            env=env,
            cwd=REPO,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = self.proc.stderr.readline()
        if "listening on" not in banner:
            raise AssertionError(f"daemon failed to start: {banner!r}")
        self.banner = banner.strip()
        self.port = int(banner.split("listening on ")[1].split(" ")[0].split(":")[1])

    def get(self, path: str):
        return http_request("127.0.0.1", self.port, "GET", path)

    def post(self, request: dict):
        return post_simulate("127.0.0.1", self.port, request)

    def kill(self) -> None:
        self.proc.kill()
        self.proc.wait()

    def terminate(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)


def check_dedup_and_byte_identity(tmp: Path) -> None:
    """Checks 1 + 2 + 4 on one daemon (cold cache)."""
    daemon = Daemon(tmp / "serve-cache")
    try:
        results = [None] * CLIENTS

        def client(i: int) -> None:
            results[i] = daemon.post(REQUEST)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        statuses = [r[0] for r in results]
        assert statuses == [200] * CLIENTS, f"statuses {statuses}"
        bodies = {r[2] for r in results}
        assert len(bodies) == 1, f"{len(bodies)} distinct bodies served"
        body = results[0][2]

        _status, _hd, health = daemon.get("/v1/healthz")
        stats = json.loads(health)["cache"]
        assert stats["misses"] == 1, f"expected 1 cache miss, got {stats}"
        assert stats["stores"] == 1, f"expected 1 cache store, got {stats}"
        print(
            f"dedup OK: {CLIENTS} concurrent identical requests -> "
            f"1 simulation, {CLIENTS} identical bodies"
        )

        # byte-identity against the library path, from a separate cache
        report_path = tmp / "direct-report.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(tmp / "direct-cache")
        subprocess.run(
            [
                sys.executable, "-m", "repro", "run", REQUEST["model"],
                "--steps", str(REQUEST["steps"]),
                "--report-out", str(report_path),
            ],
            check=True,
            env=env,
            cwd=REPO,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        direct = report_path.read_bytes()
        assert direct == body, (
            "served report differs from 'repro run --report-out' artifact "
            f"({len(direct)} vs {len(body)} bytes)"
        )
        print(f"byte-identity OK: served == direct ({len(body)} bytes)")
    except BaseException:
        daemon.kill()
        raise

    code = daemon.terminate()
    assert code == 0, f"SIGTERM drain exited {code}, want 0"
    print("graceful drain OK: SIGTERM -> exit 0")


def check_crash_recovery(tmp: Path) -> None:
    """Check 3: SIGKILL mid-batch, restart, recover, re-serve."""
    cache = tmp / "crash-cache"
    daemon = Daemon(cache, "--workers", "1")
    ids = []
    try:
        for model in ("inception-v3", "vgg-19", "resnet-50"):
            status, _hd, body = daemon.post(
                {"model": model, "steps": 3, "wait": False}
            )
            assert status == 202, f"async accept returned {status}"
            ids.append(json.loads(body)["id"])
    finally:
        daemon.kill()  # SIGKILL: no drain, no journal 'complete'
    print(f"killed daemon with {len(ids)} accepted requests in flight")

    daemon = Daemon(cache, "--workers", "2")
    try:
        assert "recovered" in daemon.banner, daemon.banner
        deadline = time.time() + 300
        pending = set(ids)
        bodies = {}
        while pending and time.time() < deadline:
            for request_id in sorted(pending):
                status, _hd, body = daemon.get(f"/v1/report/{request_id}")
                if status == 200:
                    bodies[request_id] = body
                    pending.discard(request_id)
            if pending:
                time.sleep(1.0)
        assert not pending, f"{len(pending)} recovered requests never served"

        # a stored report must re-serve byte-identically
        again_status, _hd, again = daemon.get(f"/v1/report/{ids[0]}")
        assert again_status == 200
        assert again == bodies[ids[0]], "stored report changed between GETs"
        print(
            f"crash recovery OK: {len(ids)} journaled requests recovered "
            "and served byte-stably after SIGKILL + restart"
        )
    finally:
        daemon.kill()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-gate-") as raw:
        tmp = Path(raw)
        check_dedup_and_byte_identity(tmp)
        check_crash_recovery(tmp)
    print("serve gate PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
