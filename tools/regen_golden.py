#!/usr/bin/env python
"""Regenerate the golden metric snapshot used by tests/test_golden.py.

Run after any *intentional* calibration change:

    python tools/regen_golden.py

and commit the updated ``tests/golden/metrics.json``.
"""

import json
import pathlib

from repro.experiments.common import run_model_on

GOLDEN = pathlib.Path(__file__).parent.parent / "tests" / "golden" / "metrics.json"

MODELS = ("vgg-19", "alexnet", "dcgan")
CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim", "neurocube")


def collect() -> dict:
    out = {}
    for model in MODELS:
        for config in CONFIGS:
            result = run_model_on(model, config)
            out[f"{model}/{config}"] = {
                "step_time_s": result.step_time_s,
                "dynamic_energy_j": result.step_dynamic_energy_j,
                "fixed_pim_utilization": result.fixed_pim_utilization,
                "sync_s": result.step_breakdown.sync_s,
                "data_movement_s": result.step_breakdown.data_movement_s,
            }
    return out


def main() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(collect(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()
